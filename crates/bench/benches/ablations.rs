//! A3/A4 + design-choice ablations:
//!
//! * `alpha` — migration damping ladder (the balancing time, and hence the
//!   trial wall-time, scales ~1/α — Theorem 11),
//! * `epsilon` — tight vs above-average thresholds,
//! * `stack_order` — deterministic vs shuffled arrival order (DESIGN.md
//!   design-choice 2: must not change the asymptotics),
//! * `walk_kind` — max-degree vs lazy walk for the resource protocol on a
//!   bipartite graph (DESIGN.md design-choice 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_core::placement::Placement;
use tlb_core::resource_protocol::{run_resource_controlled, ResourceControlledConfig};
use tlb_core::threshold::ThresholdPolicy;
use tlb_core::user_protocol::{run_user_controlled, UserControlledConfig};
use tlb_core::weights::WeightSpec;
use tlb_graphs::generators;
use tlb_walks::WalkKind;

fn bench_alpha(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations/alpha");
    group.sample_size(10);
    let n = 150;
    let spec = WeightSpec::figure2(1000, 16.0);
    for &alpha in &[0.01f64, 0.1, 1.0] {
        let cfg = UserControlledConfig { alpha, ..Default::default() };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("alpha={alpha}")),
            &cfg,
            |b, cfg| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut rng = SmallRng::seed_from_u64(seed);
                    let tasks = spec.generate(&mut rng);
                    run_user_controlled(n, &tasks, Placement::AllOnOne(0), cfg, &mut rng).rounds
                })
            },
        );
    }
    group.finish();
}

fn bench_epsilon(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations/epsilon");
    group.sample_size(10);
    let n = 100;
    let spec = WeightSpec::Uniform { m: 3000 };
    for (label, policy) in [
        ("tight", ThresholdPolicy::Tight),
        ("eps=0.2", ThresholdPolicy::AboveAverage { epsilon: 0.2 }),
        ("eps=1.0", ThresholdPolicy::AboveAverage { epsilon: 1.0 }),
    ] {
        let cfg = UserControlledConfig { threshold: policy, ..Default::default() };
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = SmallRng::seed_from_u64(seed);
                let tasks = spec.generate(&mut rng);
                run_user_controlled(n, &tasks, Placement::AllOnOne(0), cfg, &mut rng).rounds
            })
        });
    }
    group.finish();
}

fn bench_stack_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations/stack_order");
    group.sample_size(10);
    let g = generators::complete(150);
    let spec = WeightSpec::ParetoTruncated { m: 1500, alpha: 1.5, cap: 32.0 };
    for (label, shuffle) in [("deterministic", false), ("shuffled", true)] {
        let cfg = ResourceControlledConfig { shuffle_arrivals: shuffle, ..Default::default() };
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = SmallRng::seed_from_u64(seed);
                let tasks = spec.generate(&mut rng);
                run_resource_controlled(&g, &tasks, Placement::AllOnOne(0), cfg, &mut rng).rounds
            })
        });
    }
    group.finish();
}

fn bench_walk_kind(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations/walk_kind");
    group.sample_size(10);
    let g = generators::torus2d(12, 12); // bipartite: the interesting case
    let spec = WeightSpec::Uniform { m: 1440 };
    for (label, walk) in [("max-degree", WalkKind::MaxDegree), ("lazy", WalkKind::Lazy)] {
        let cfg = ResourceControlledConfig { walk, ..Default::default() };
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = SmallRng::seed_from_u64(seed);
                let tasks = spec.generate(&mut rng);
                run_resource_controlled(&g, &tasks, Placement::AllOnOne(0), cfg, &mut rng).rounds
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_alpha, bench_epsilon, bench_stack_order, bench_walk_kind);
criterion_main!(benches);
