//! A2 — tight-threshold bench on the Observation-8 lollipop family: the
//! balancing time (and hence the wall time per trial) scales as
//! `H(G)·log m = Θ((n²/k)·log m)`, so the per-k timings themselves exhibit
//! the lower bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_core::resource_protocol::{run_resource_controlled, ResourceControlledConfig};
use tlb_core::threshold::ThresholdPolicy;
use tlb_experiments::figures::obs8;
use tlb_graphs::generators::lollipop;

fn bench_lollipop_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("tight_threshold/lollipop");
    group.sample_size(10);
    let n = 20;
    let (tasks, placement) = obs8::workload(n);
    for &k in &[1usize, 4, 16] {
        let g = lollipop(n, k).unwrap();
        let cfg = ResourceControlledConfig {
            threshold: ThresholdPolicy::TightResource,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(format!("k={k}")), &g, |b, g| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = SmallRng::seed_from_u64(seed);
                run_resource_controlled(g, &tasks, placement.clone(), &cfg, &mut rng).rounds
            })
        });
    }
    group.finish();
}

fn bench_exact_hitting_lollipop(c: &mut Criterion) {
    let mut group = c.benchmark_group("tight_threshold/hitting_exact");
    group.sample_size(10);
    for &n in &[32usize, 64] {
        let g = lollipop(n, 2).unwrap();
        let p = tlb_walks::TransitionMatrix::build(&g, tlb_walks::WalkKind::MaxDegree);
        group.bench_with_input(BenchmarkId::from_parameter(format!("n={n}")), &p, |b, p| {
            b.iter(|| tlb_walks::hitting::max_hitting_time_exact(p))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lollipop_k, bench_exact_hitting_lollipop);
criterion_main!(benches);
