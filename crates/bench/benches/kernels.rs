//! Substrate micro-kernels: the inner-loop operations whose cost
//! determines simulation throughput.
//!
//! * walker step sampling (hot loop of Algorithm 5.1),
//! * stack φ scan and Bernoulli drain (hot loop of Algorithm 6.1),
//! * diffusion step (footnote 1),
//! * dense mat-vec and LU factorization (walk-theory substrate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_core::diffusion::{diffusion_step, DiffusionKind};
use tlb_core::stack::ResourceStack;
use tlb_graphs::generators;
use tlb_walks::linalg::{LuFactors, Matrix};
use tlb_walks::{TransitionMatrix, WalkKind, Walker};

fn bench_walker_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/walker_step");
    let g = generators::torus2d(32, 32);
    let w = Walker::new(&g, WalkKind::MaxDegree);
    let mut rng = SmallRng::seed_from_u64(1);
    group.throughput(Throughput::Elements(1));
    group.bench_function("torus_1024", |b| {
        let mut v = 0u32;
        b.iter(|| {
            v = w.step(v, &mut rng);
            v
        })
    });
    group.finish();
}

fn bench_stack_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/stack");
    let m = 10_000usize;
    let weights: Vec<f64> = (0..m).map(|i| 1.0 + (i % 50) as f64).collect();
    let mut stack = ResourceStack::new();
    for (i, &w) in weights.iter().enumerate() {
        stack.push(i as u32, w);
    }
    let threshold = stack.load() * 0.6;
    group.throughput(Throughput::Elements(m as u64));
    group.bench_function("phi_scan_10k", |b| b.iter(|| stack.phi(threshold, &weights)));
    group.bench_function("drain_bernoulli_10k", |b| {
        let mut rng = SmallRng::seed_from_u64(2);
        b.iter(|| {
            let mut s = stack.clone();
            s.drain_bernoulli(0.02, &weights, &mut rng).len()
        })
    });
    group.finish();
}

fn bench_diffusion_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/diffusion");
    for &side in &[16usize, 64] {
        let g = generators::torus2d(side, side);
        let n = g.num_nodes();
        let init: Vec<f64> = (0..n).map(|i| (i % 17) as f64).collect();
        let mut out = vec![0.0; n];
        group.throughput(Throughput::Elements(g.num_edges() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(format!("torus_{n}")), &g, |b, g| {
            b.iter(|| diffusion_step(g, &init, &mut out, DiffusionKind::Damped))
        });
    }
    group.finish();
}

fn bench_linalg(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/linalg");
    group.sample_size(20);
    for &n in &[64usize, 256] {
        let g = generators::complete(n);
        let p = TransitionMatrix::build(&g, WalkKind::MaxDegree);
        let x = vec![1.0 / n as f64; n];
        let mut y = vec![0.0; n];
        group.bench_with_input(BenchmarkId::from_parameter(format!("matvec_{n}")), &p, |b, p| {
            b.iter(|| p.matrix().matvec_into(&x, &mut y))
        });
        let a = Matrix::from_fn(n, n, |i, j| if i == j { 4.0 } else { 1.0 / (1 + i + j) as f64 });
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("lu_factor_{n}")),
            &a,
            |b, a| b.iter(|| LuFactors::factor(a).unwrap().order()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_walker_step, bench_stack_ops, bench_diffusion_step, bench_linalg);
criterion_main!(benches);
