//! F2 — Figure 2 bench: one user-controlled trial per (m, w_max) grid
//! point (n scaled to 250; full-scale data from the `figure2` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_core::placement::Placement;
use tlb_core::user_protocol::{run_user_controlled, UserControlledConfig};
use tlb_core::weights::WeightSpec;

fn bench_figure2_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure2/trial");
    group.sample_size(20);
    let n = 250;
    let cfg = UserControlledConfig::default();
    for &w_max in &[1.0f64, 16.0, 256.0] {
        for &m in &[1000usize, 5000] {
            let spec = WeightSpec::figure2(m, w_max);
            let id = format!("m={m},wmax={w_max:.0}");
            group.bench_with_input(BenchmarkId::from_parameter(id), &spec, |b, spec| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut rng = SmallRng::seed_from_u64(seed);
                    let tasks = spec.generate(&mut rng);
                    run_user_controlled(n, &tasks, Placement::AllOnOne(0), &cfg, &mut rng).rounds
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_figure2_points);
criterion_main!(benches);
