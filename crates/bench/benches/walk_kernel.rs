//! Walk-step kernel: scalar `Walker` vs batched `BatchWalker` on the
//! topologies the protocols actually run — expander (random regular, the
//! paper's fast-mixing case), cycle (degree 2, slow mixing), and star
//! (maximal degree skew) — at several degrees.
//!
//! Throughput is reported per walker step. The batched kernel's win comes
//! from bulk RNG generation (register-resident xoshiro fill for the
//! regular fast path, the 8-lane striped [`WideRng`] block for the lazy
//! walk) plus the gather-style two-pass Lemire mapping over the flat CSR
//! arena; the scalar path pays one generator round-trip per step.
//!
//! The lazy group carries a third variant, `fused`, replaying the
//! previous single-stream fused kernel verbatim
//! ([`tlb_bench::workloads::step_lazy_fused_reference`]: one inline
//! `SmallRng` word per walker, affine gather, branchless select) so the
//! wide-lane win over the old kernel — not just over scalar — stays
//! measured.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_bench::workloads::step_lazy_fused_reference;
use tlb_graphs::generators::{cycle, random_regular, star};
use tlb_graphs::{Graph, NodeId};
use tlb_walks::batch::step_batch_scalar;
use tlb_walks::{BatchWalker, WalkKind};

/// Cohort size per batched call: the order of magnitude of ejected tasks
/// per round in the Section-7 experiments.
const COHORT: usize = 1024;

fn graphs() -> Vec<(String, Graph)> {
    let mut rng = SmallRng::seed_from_u64(0xE1);
    let mut out = Vec::new();
    for d in [8usize, 16, 64] {
        out.push((
            format!("expander_d{d}"),
            random_regular(1024, d, &mut rng).expect("regular graph"),
        ));
    }
    out.push(("cycle_d2".to_string(), cycle(1024)));
    out.push(("star_d1023".to_string(), star(1024)));
    out
}

fn bench_walk_kernel(c: &mut Criterion) {
    for kind in [WalkKind::MaxDegree, WalkKind::Lazy] {
        let mut group = c.benchmark_group(format!("walk_kernel/{}", kind.label()));
        group.throughput(Throughput::Elements(COHORT as u64));
        for (name, g) in graphs() {
            let starts: Vec<NodeId> =
                (0..COHORT as u32).map(|i| i % g.num_nodes() as u32).collect();
            group.bench_with_input(BenchmarkId::new("scalar", &name), &g, |b, g| {
                let mut rng = SmallRng::seed_from_u64(7);
                let mut positions = starts.clone();
                b.iter(|| {
                    step_batch_scalar(g, kind, &mut positions, &mut rng);
                    positions[0]
                })
            });
            group.bench_with_input(BenchmarkId::new("batched", &name), &g, |b, g| {
                let mut rng = SmallRng::seed_from_u64(7);
                let mut kernel = BatchWalker::new();
                let mut positions = starts.clone();
                b.iter(|| {
                    kernel.step_batch(g, kind, &mut positions, &mut rng);
                    positions[0]
                })
            });
            if kind == WalkKind::Lazy {
                // The pre-wide-lane fused kernel, replayed verbatim.
                group.bench_with_input(BenchmarkId::new("fused", &name), &g, |b, g| {
                    let mut rng = SmallRng::seed_from_u64(7);
                    let mut positions = starts.clone();
                    b.iter(|| {
                        step_lazy_fused_reference(g, &mut positions, &mut rng);
                        positions[0]
                    })
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_walk_kernel);
criterion_main!(benches);
