//! CI smoke bench: measure trial-harness throughput (sequential vs the
//! persistent worker pool) on the uneven workload and write a
//! `BENCH_harness.json` snapshot so the perf trajectory accumulates run
//! over run. A second snapshot, `BENCH_sweep.json`, covers this PR's two
//! batching axes: the walk-step kernel (scalar vs wide-lane-batched vs the PR 4
//! fused replay, on d8/d16 expanders)
//! and sweep scheduling (whole-sweep `run_sweep` vs the per-point loop on
//! an uneven sweep).
//!
//! Usage: `harness_smoke [--trials N] [--batches B] [--reps R] [--out PATH]
//!                       [--sweep-points P] [--sweep-trials T] [--sweep-out PATH]`
//!
//! `--batches B` splits the trials over B successive harness calls, the
//! shape of a real sweep (one call per parameter point) — it surfaces the
//! per-call cost the persistent pool removes (the scoped baseline spawns
//! `threads` fresh threads on every call).
//!
//! Exits nonzero (panics) if any parallel/batched results are not
//! bit-identical to their sequential/per-point references — the
//! reproducibility contract is part of the smoke check, not just the unit
//! tests.

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_bench::rss::{peak_rss_bytes, rss_json};
use tlb_bench::workloads::{
    run_sweep_per_point, run_sweep_whole, run_trials_scoped, step_lazy_fused_reference,
    sweep_point_seeds, uneven_user_trial,
};
use tlb_experiments::harness;
use tlb_graphs::generators::random_regular;
use tlb_graphs::NodeId;
use tlb_walks::batch::step_batch_scalar;
use tlb_walks::{BatchWalker, WalkKind};

/// Best-of-`reps` wall time of `run` (minimum is the least noisy
/// wall-clock estimator for short batches); returns it with the last
/// result for the bit-identity checks.
fn time_best<T: Default, F: FnMut() -> T>(reps: usize, mut run: F) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = T::default();
    for _ in 0..reps {
        let t = Instant::now();
        last = run();
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, last)
}

/// Run `batches` successive harness calls of `per_batch` trials through
/// `runner`, concatenating the results (the shape of a sweep: one call per
/// parameter point).
fn sweep<R>(batches: usize, per_batch: usize, runner: R) -> Vec<f64>
where
    R: Fn(usize, u64) -> Vec<f64>,
{
    let mut all = Vec::with_capacity(batches * per_batch);
    for b in 0..batches as u64 {
        all.extend(runner(per_batch, 7 + b));
    }
    all
}

/// Walk-kernel throughput: scalar vs batched one-step sampling of a
/// `COHORT`-walker cohort on a degree-`d` expander, best of `reps` timed
/// blocks of `ITERS` steps each. Returns steps/sec
/// `(scalar, batched, fused)`, where `fused` replays the pre-wide-lane
/// single-stream kernel (one `SmallRng` word per walker through the lazy
/// word law) and is only measured for [`WalkKind::Lazy`] (`None`
/// otherwise).
fn kernel_throughput(kind: WalkKind, d: usize, reps: usize) -> (f64, f64, Option<f64>) {
    // The kernel rows feed the recorded speedup claim, so their best-of
    // needs more samples than the harness timings to converge — on a
    // shared vCPU a noisy-neighbor burst can poison several consecutive
    // reps, and only a wide best-of window reliably straddles it.
    let reps = reps.max(41);
    const COHORT: usize = 1024;
    // Long enough that each timed block is a few milliseconds — at the
    // sub-millisecond block sizes a scheduler blip skews a whole rep.
    const ITERS: usize = 2500;
    let mut rng = SmallRng::seed_from_u64(0xE1);
    let g = random_regular(1024, d, &mut rng).expect("regular graph");
    let starts: Vec<NodeId> = (0..COHORT as u32).collect();
    let steps = (COHORT * ITERS) as f64;

    let mut best_scalar = f64::INFINITY;
    let mut best_batched = f64::INFINITY;
    let mut best_fused = f64::INFINITY;
    for _ in 0..reps {
        let mut positions = starts.clone();
        let mut r = SmallRng::seed_from_u64(7);
        let t = Instant::now();
        for _ in 0..ITERS {
            step_batch_scalar(&g, kind, &mut positions, &mut r);
        }
        best_scalar = best_scalar.min(t.elapsed().as_secs_f64());

        let mut positions = starts.clone();
        let mut r = SmallRng::seed_from_u64(7);
        let mut kernel = BatchWalker::new();
        let t = Instant::now();
        for _ in 0..ITERS {
            kernel.step_batch(&g, kind, &mut positions, &mut r);
        }
        best_batched = best_batched.min(t.elapsed().as_secs_f64());

        if kind == WalkKind::Lazy {
            let mut positions = starts.clone();
            let mut r = SmallRng::seed_from_u64(7);
            let t = Instant::now();
            for _ in 0..ITERS {
                step_lazy_fused_reference(&g, &mut positions, &mut r);
            }
            best_fused = best_fused.min(t.elapsed().as_secs_f64());
        }
    }
    let fused = (kind == WalkKind::Lazy).then(|| steps / best_fused);
    (steps / best_scalar, steps / best_batched, fused)
}

/// Render one kernel comparison as a JSON object body.
fn kernel_json(kind: WalkKind, d: usize, reps: usize) -> String {
    let (scalar, batched, fused) = kernel_throughput(kind, d, reps);
    let fused_keys = match fused {
        Some(f) => format!(
            "\n    \"fused_steps_per_sec\": {f:.0},\n    \
             \"speedup_widelane_vs_fused\": {:.3},",
            batched / f,
        ),
        None => String::new(),
    };
    format!(
        "{{\n    \"graph\": \"random_regular_n1024_d{d}\",\n    \"walk\": \"{}\",\n    \
         \"cohort\": 1024,\n    \"scalar_steps_per_sec\": {scalar:.0},\n    \
         \"batched_steps_per_sec\": {batched:.0},{fused_keys}\n    \
         \"speedup_batched_vs_scalar\": {:.3}\n  }}",
        kind.label(),
        batched / scalar,
    )
}

fn main() {
    let mut trials = 64usize;
    let mut batches = 1usize;
    let mut reps = 5usize;
    let mut out = String::from("BENCH_harness.json");
    let mut sweep_points = 12usize;
    let mut sweep_trials = 8usize;
    let mut sweep_out = String::from("BENCH_sweep.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trials" => {
                trials = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--trials needs a positive integer");
            }
            "--batches" => {
                batches = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--batches needs a positive integer");
            }
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps needs a positive integer");
            }
            "--out" => out = args.next().expect("--out needs a path"),
            "--sweep-points" => {
                sweep_points = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--sweep-points needs a positive integer");
            }
            "--sweep-trials" => {
                sweep_trials = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--sweep-trials needs a positive integer");
            }
            "--sweep-out" => sweep_out = args.next().expect("--sweep-out needs a path"),
            other => panic!(
                "unknown argument {other:?} (expected --trials N / --batches B / --reps R / \
                 --out PATH / --sweep-points P / --sweep-trials T / --sweep-out PATH)"
            ),
        }
    }
    assert!(
        trials > 0 && batches > 0 && reps > 0 && sweep_points > 0 && sweep_trials > 0,
        "all counts must be positive"
    );
    let per_batch = trials.div_ceil(batches);

    // Kernel micro-benches run first, before the saturating pool
    // benchmarks: tens of seconds of all-core load drain the sustained
    // turbo budget, which taxes the vector-heavy wide-lane variant more
    // than the scalar ones and would skew the recorded ratio.
    let kernel_max_degree_d8 = kernel_json(WalkKind::MaxDegree, 8, reps);
    let kernel_max_degree = kernel_json(WalkKind::MaxDegree, 16, reps);
    let kernel_lazy_d8 = kernel_json(WalkKind::Lazy, 8, reps);
    let kernel_lazy = kernel_json(WalkKind::Lazy, 16, reps);

    // Warm the pool (thread spawn + lazy init) outside the timed region.
    harness::run_trials(per_batch.min(8), 3, uneven_user_trial);

    let (seq_secs, seq) = time_best(reps, || {
        sweep(batches, per_batch, |n, s| harness::run_trials_sequential(n, s, uneven_user_trial))
    });
    // The pre-pool strategy (fresh scoped threads, one static chunk per
    // core, spawned again on every call) as the comparison baseline.
    let (scoped_secs, scoped) = time_best(reps, || {
        sweep(batches, per_batch, |n, s| run_trials_scoped(n, s, uneven_user_trial))
    });
    let (par_secs, par) = time_best(reps, || {
        sweep(batches, per_batch, |n, s| harness::run_trials(n, s, uneven_user_trial))
    });

    assert_eq!(seq, par, "parallel results must be bit-identical to sequential");
    assert_eq!(seq, scoped, "scoped baseline must match sequential too");
    let trials = per_batch * batches;

    let threads = rayon::current_num_threads();
    let speedup_vs_seq = seq_secs / par_secs;
    let speedup_vs_scoped = scoped_secs / par_secs;
    let json = format!(
        "{{\n  \"bench\": \"harness_scaling\",\n  \"workload\": \"uneven_user_trial\",\n  \
         \"trials\": {trials},\n  \"batches\": {batches},\n  \"threads\": {threads},\n  \
         \"sequential_secs\": {seq_secs:.6},\n  \"scoped_threads_secs\": {scoped_secs:.6},\n  \
         \"pool_secs\": {par_secs:.6},\n  \
         \"trials_per_sec_sequential\": {:.3},\n  \"trials_per_sec_pool\": {:.3},\n  \
         \"speedup_pool_vs_sequential\": {speedup_vs_seq:.3},\n  \
         \"speedup_pool_vs_scoped\": {speedup_vs_scoped:.3},\n  \
         \"peak_rss_bytes\": {},\n  \"bit_identical\": true\n}}\n",
        trials as f64 / seq_secs,
        trials as f64 / par_secs,
        rss_json(peak_rss_bytes()),
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("{json}");
    println!(
        "wrote {out}: {trials} trials on {threads} threads, \
         {speedup_vs_seq:.2}x vs sequential, {speedup_vs_scoped:.2}x vs scoped-thread baseline"
    );

    // ---- BENCH_sweep.json: walk kernel + whole-sweep scheduling ----

    let seeds = sweep_point_seeds(sweep_points);
    let (per_point_secs, per_point) = time_best(reps, || run_sweep_per_point(&seeds, sweep_trials));
    let (whole_secs, whole) = time_best(reps, || run_sweep_whole(&seeds, sweep_trials));
    assert_eq!(whole, per_point, "whole-sweep results must be bit-identical to per-point");

    let sweep_json = format!(
        "{{\n  \"bench\": \"sweep_scheduling\",\n  \"workload\": \"uneven_sweep_trial\",\n  \
         \"points\": {sweep_points},\n  \"trials_per_point\": {sweep_trials},\n  \
         \"threads\": {threads},\n  \
         \"per_point_secs\": {per_point_secs:.6},\n  \"whole_sweep_secs\": {whole_secs:.6},\n  \
         \"points_per_sec_per_point\": {:.3},\n  \"points_per_sec_whole_sweep\": {:.3},\n  \
         \"speedup_whole_sweep_vs_per_point\": {:.3},\n  \"bit_identical\": true,\n  \
         \"kernel_max_degree_d8\": {kernel_max_degree_d8},\n  \
         \"kernel_max_degree\": {kernel_max_degree},\n  \
         \"kernel_lazy_d8\": {kernel_lazy_d8},\n  \"kernel_lazy\": {kernel_lazy}\n}}\n",
        sweep_points as f64 / per_point_secs,
        sweep_points as f64 / whole_secs,
        per_point_secs / whole_secs,
    );
    std::fs::write(&sweep_out, &sweep_json)
        .unwrap_or_else(|e| panic!("cannot write {sweep_out}: {e}"));
    println!("{sweep_json}");
    println!(
        "wrote {sweep_out}: {sweep_points}x{sweep_trials} sweep, \
         whole-sweep {:.2}x vs per-point",
        per_point_secs / whole_secs,
    );
}
