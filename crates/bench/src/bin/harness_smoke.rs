//! CI smoke bench: measure trial-harness throughput (sequential vs the
//! persistent worker pool) on the uneven workload and write a
//! `BENCH_harness.json` snapshot so the perf trajectory accumulates run
//! over run.
//!
//! Usage: `harness_smoke [--trials N] [--batches B] [--reps R] [--out PATH]`
//!
//! `--batches B` splits the trials over B successive harness calls, the
//! shape of a real sweep (one call per parameter point) — it surfaces the
//! per-call cost the persistent pool removes (the scoped baseline spawns
//! `threads` fresh threads on every call).
//!
//! Exits nonzero (panics) if the parallel results are not bit-identical to
//! the sequential ones — the reproducibility contract is part of the
//! smoke check, not just the unit tests.

use std::time::Instant;

use tlb_bench::workloads::{run_trials_scoped, uneven_user_trial};
use tlb_experiments::harness;

/// Best-of-`reps` wall time of `run` (minimum is the least noisy
/// wall-clock estimator for short batches); returns it with the last
/// result vector for the bit-identity check.
fn time_best<F: FnMut() -> Vec<f64>>(reps: usize, mut run: F) -> (f64, Vec<f64>) {
    let mut best = f64::INFINITY;
    let mut last = Vec::new();
    for _ in 0..reps {
        let t = Instant::now();
        last = run();
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, last)
}

/// Run `batches` successive harness calls of `per_batch` trials through
/// `runner`, concatenating the results (the shape of a sweep: one call per
/// parameter point).
fn sweep<R>(batches: usize, per_batch: usize, runner: R) -> Vec<f64>
where
    R: Fn(usize, u64) -> Vec<f64>,
{
    let mut all = Vec::with_capacity(batches * per_batch);
    for b in 0..batches as u64 {
        all.extend(runner(per_batch, 7 + b));
    }
    all
}

fn main() {
    let mut trials = 64usize;
    let mut batches = 1usize;
    let mut reps = 5usize;
    let mut out = String::from("BENCH_harness.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trials" => {
                trials = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--trials needs a positive integer");
            }
            "--batches" => {
                batches = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--batches needs a positive integer");
            }
            "--reps" => {
                reps =
                    args.next().and_then(|v| v.parse().ok()).expect("--reps needs a positive integer");
            }
            "--out" => out = args.next().expect("--out needs a path"),
            other => panic!(
                "unknown argument {other:?} (expected --trials N / --batches B / --reps R / --out PATH)"
            ),
        }
    }
    assert!(trials > 0 && batches > 0 && reps > 0, "all counts must be positive");
    let per_batch = trials.div_ceil(batches);

    // Warm the pool (thread spawn + lazy init) outside the timed region.
    harness::run_trials(per_batch.min(8), 3, uneven_user_trial);

    let (seq_secs, seq) = time_best(reps, || {
        sweep(batches, per_batch, |n, s| harness::run_trials_sequential(n, s, uneven_user_trial))
    });
    // The pre-pool strategy (fresh scoped threads, one static chunk per
    // core, spawned again on every call) as the comparison baseline.
    let (scoped_secs, scoped) = time_best(reps, || {
        sweep(batches, per_batch, |n, s| run_trials_scoped(n, s, uneven_user_trial))
    });
    let (par_secs, par) = time_best(reps, || {
        sweep(batches, per_batch, |n, s| harness::run_trials(n, s, uneven_user_trial))
    });

    assert_eq!(seq, par, "parallel results must be bit-identical to sequential");
    assert_eq!(seq, scoped, "scoped baseline must match sequential too");
    let trials = per_batch * batches;

    let threads = rayon::current_num_threads();
    let speedup_vs_seq = seq_secs / par_secs;
    let speedup_vs_scoped = scoped_secs / par_secs;
    let json = format!(
        "{{\n  \"bench\": \"harness_scaling\",\n  \"workload\": \"uneven_user_trial\",\n  \
         \"trials\": {trials},\n  \"batches\": {batches},\n  \"threads\": {threads},\n  \
         \"sequential_secs\": {seq_secs:.6},\n  \"scoped_threads_secs\": {scoped_secs:.6},\n  \
         \"pool_secs\": {par_secs:.6},\n  \
         \"trials_per_sec_sequential\": {:.3},\n  \"trials_per_sec_pool\": {:.3},\n  \
         \"speedup_pool_vs_sequential\": {speedup_vs_seq:.3},\n  \
         \"speedup_pool_vs_scoped\": {speedup_vs_scoped:.3},\n  \"bit_identical\": true\n}}\n",
        trials as f64 / seq_secs,
        trials as f64 / par_secs,
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("{json}");
    println!(
        "wrote {out}: {trials} trials on {threads} threads, \
         {speedup_vs_seq:.2}x vs sequential, {speedup_vs_scoped:.2}x vs scoped-thread baseline"
    );
}
