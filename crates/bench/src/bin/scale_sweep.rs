//! Million-scale throughput sweep of the sharded online engine.
//!
//! For each point of an `n`-grid the driver seeds `10·n` unit tasks onto
//! a degree-8 random-regular graph (one batched arrival at epoch 0),
//! runs the resource-controlled online engine for a fixed number of
//! epochs at every requested shard count, and writes two artifacts:
//!
//! * `BENCH_scale.json` (`--out`): timing rows — wall seconds,
//!   epochs/sec, and peak RSS per `(n, shards)` cell, plus the thread
//!   count. Peak RSS is the *process* high-water mark (`VmHWM`), so it is
//!   monotone over the run: read each row as "peak by the end of this
//!   cell", and compare like cells across runs, not cells within one run.
//! * a deterministic snapshot (`--det-out`): the full [`SimReport`] per
//!   `n`, with no wall-clock content. The engine's output is
//!   bit-identical across thread counts and shard counts (see
//!   `tlb_sim::shard`), so this file must be **byte-identical** no matter
//!   which `--shards` list or `RAYON_NUM_THREADS` produced it — the CI
//!   scale job diffs four such runs.
//!
//! When `--shards` lists several counts the driver also asserts, in
//! process, that every count reproduced the same report.
//!
//! Observability: `--obs-out PATH` turns the engine's obs registry on
//! for every cell and writes a `BENCH_obs.json` — the same timing rows
//! plus the merged [`ObsReport`] subtrees (`counters` deterministic,
//! `timings` wall clock, `exec` layout diagnostics). `--obs-det-out
//! PATH` writes *only* the `counters` subtree, which must be
//! byte-identical across thread and shard counts — the obs twin of
//! `--det-out`. Without either flag the run is obs-free, identical to
//! the uninstrumented driver.
//!
//! Usage: `scale_sweep [--quick] [--epochs E] [--shards 1,4,...]
//!                     [--out PATH] [--det-out PATH]
//!                     [--obs-out PATH] [--obs-det-out PATH]`
//!
//! `--quick` runs the CI grid (n = 10⁴ and 10⁵, i.e. up to 10⁵ resources
//! and 10⁶ tasks); the default grid adds n = 10⁶ (10⁷ tasks) for real
//! scaling measurements.

use std::fmt::Write as _;
use std::time::Instant;

use tlb_bench::rss::{peak_rss_bytes, rss_json};
use tlb_obs::ObsReport;
use tlb_sim::{ArrivalProcess, OnlineSim, SimConfig, SimReport};
use tlb_walks::WalkKind;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_graphs::generators::random_regular;

const BASE_SEED: u64 = 0xA5_CA1E;

/// Configuration for one grid point at one shard count.
fn config(n: usize, epochs: u64, shards: usize) -> SimConfig {
    SimConfig {
        name: format!("scale_n{n}"),
        epochs,
        seed: BASE_SEED,
        // The whole task population lands in one batch at epoch 0; the
        // remaining epochs measure steady-state rebalancing + drain.
        arrivals: ArrivalProcess::Batched { size: 10 * n, every: u64::MAX },
        departure_prob: 0.02,
        rebalance: tlb_sim::RebalancePolicy::Resource { walk: WalkKind::MaxDegree },
        rounds_per_epoch: 32,
        shards,
        ..Default::default()
    }
}

/// One timed run; returns the report, its wall seconds, and (when obs
/// was requested) the cell's observability report.
fn run_cell(
    base: &tlb_graphs::Graph,
    n: usize,
    epochs: u64,
    shards: usize,
    obs: bool,
) -> (SimReport, f64, Option<ObsReport>) {
    let mut sim = OnlineSim::new(base.clone(), config(n, epochs, shards));
    if obs {
        sim.enable_obs();
    }
    let t = Instant::now();
    let report = sim.run();
    let secs = t.elapsed().as_secs_f64();
    (report, secs, sim.obs_report())
}

fn main() {
    let mut quick = false;
    let mut epochs = 6u64;
    let mut shards: Vec<usize> = vec![1, 4];
    let mut out = String::from("BENCH_scale.json");
    let mut det_out: Option<String> = None;
    let mut obs_out: Option<String> = None;
    let mut obs_det_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--epochs" => {
                epochs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--epochs needs a positive integer");
            }
            "--shards" => {
                let list = args.next().expect("--shards needs a comma-separated list");
                shards = list
                    .split(',')
                    .map(|s| s.trim().parse().expect("--shards entries must be positive integers"))
                    .collect();
            }
            "--out" => out = args.next().expect("--out needs a path"),
            "--det-out" => det_out = Some(args.next().expect("--det-out needs a path")),
            "--obs-out" => obs_out = Some(args.next().expect("--obs-out needs a path")),
            "--obs-det-out" => {
                obs_det_out = Some(args.next().expect("--obs-det-out needs a path"));
            }
            other => panic!(
                "unknown argument {other:?} (expected --quick / --epochs E / --shards LIST / \
                 --out PATH / --det-out PATH / --obs-out PATH / --obs-det-out PATH)"
            ),
        }
    }
    assert!(epochs > 0 && !shards.is_empty() && shards.iter().all(|&s| s > 0));

    let grid: &[usize] = if quick { &[10_000, 100_000] } else { &[10_000, 100_000, 1_000_000] };
    let threads = rayon::current_num_threads();
    let obs_on = obs_out.is_some() || obs_det_out.is_some();

    let mut rows = String::new();
    let mut det_reports = String::new();
    let mut obs_total: Option<ObsReport> = None;
    for (gi, &n) in grid.iter().enumerate() {
        let mut rng = SmallRng::seed_from_u64(BASE_SEED ^ n as u64);
        let base = random_regular(n, 8, &mut rng).expect("regular scale graph");

        let mut reference: Option<SimReport> = None;
        for &s in &shards {
            let (report, secs, obs) = run_cell(&base, n, epochs, s, obs_on);
            // Merge one cell per n — the first listed shard count — so
            // the merged counters cannot depend on how many counts the
            // `--shards` list replays (each cell's counters are already
            // shard-count-invariant on their own).
            if let Some(obs) = obs.filter(|_| s == shards[0]) {
                match &mut obs_total {
                    None => obs_total = Some(obs),
                    Some(total) => total.merge(&obs),
                }
            }
            match &reference {
                None => reference = Some(report),
                Some(reference) => assert_eq!(
                    reference, &report,
                    "shard-count invariance violated at n={n}, shards={s}"
                ),
            }
            let epochs_per_sec = epochs as f64 / secs;
            if !rows.is_empty() {
                rows.push_str(",\n");
            }
            write!(
                rows,
                "    {{ \"n\": {n}, \"tasks\": {}, \"shards\": {s}, \"epochs\": {epochs}, \
                 \"secs\": {secs:.6}, \"epochs_per_sec\": {epochs_per_sec:.3}, \
                 \"peak_rss_bytes\": {} }}",
                10 * n,
                rss_json(peak_rss_bytes()),
            )
            .unwrap();
            println!(
                "n={n:>8} shards={s:>3} threads={threads}: {secs:.3}s \
                 ({epochs_per_sec:.2} epochs/sec)"
            );
        }

        // The deterministic snapshot carries one report per n — the
        // in-process assertion above proved every shard count agrees, so
        // which one we emit is immaterial.
        let report = reference.expect("at least one shard count ran");
        assert!(
            report.last().expect("epochs > 0").balanced,
            "scale run must re-converge within the round budget at n={n}"
        );
        if gi > 0 {
            det_reports.push_str(",\n");
        }
        write!(det_reports, "  \"n={n}\": {}", report.to_json().expect("report serializes"))
            .unwrap();
    }

    let json = format!(
        "{{\n  \"bench\": \"scale_sweep\",\n  \"workload\": \"batched_10n_tasks_regular_d8\",\n  \
         \"quick\": {quick},\n  \"threads\": {threads},\n  \"rows\": [\n{rows}\n  ]\n}}\n"
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("{json}");
    println!("wrote {out}");

    if let Some(det_out) = det_out {
        let det = format!("{{\n{det_reports}\n}}\n");
        std::fs::write(&det_out, &det).unwrap_or_else(|e| panic!("cannot write {det_out}: {e}"));
        println!("wrote {det_out} (deterministic; byte-stable across threads and shards)");
    }

    if obs_on {
        let obs = obs_total.expect("obs was enabled for every cell");
        if let Some(obs_out) = obs_out {
            let json = format!(
                "{{\n  \"bench\": \"scale_sweep\",\n  \
                 \"workload\": \"batched_10n_tasks_regular_d8\",\n  \"quick\": {quick},\n  \
                 \"threads\": {threads},\n  \"rows\": [\n{rows}\n  ],\n  \
                 \"counters\": {},\n  \"timings\": {},\n  \"exec\": {}\n}}\n",
                obs.counters_json(),
                obs.timings_json(),
                obs.exec_json(),
            );
            std::fs::write(&obs_out, &json)
                .unwrap_or_else(|e| panic!("cannot write {obs_out}: {e}"));
            println!("wrote {obs_out} (timing rows + obs report)");
        }
        if let Some(obs_det_out) = obs_det_out {
            let det = format!("{}\n", obs.counters_json());
            std::fs::write(&obs_det_out, &det)
                .unwrap_or_else(|e| panic!("cannot write {obs_det_out}: {e}"));
            println!("wrote {obs_det_out} (obs counters; byte-stable across threads and shards)");
        }
    }
}
