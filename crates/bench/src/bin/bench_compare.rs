//! Compare two `BENCH_*.json` snapshots and flag perf regressions.
//!
//! Both files are parsed as generic JSON trees; every numeric leaf is
//! flattened to a dotted path (`rows[3].epochs_per_sec`) and paths
//! present in both files are compared. The *direction* of each metric is
//! classified from its name:
//!
//! * higher-is-better — name contains `per_sec` or `speedup`;
//! * lower-is-better — name contains `secs`, `_ns`, `rss`, or `bytes`
//!   (unless the leaf is a `*_count` / `*_hits` tally, which stays
//!   informational — an observability counter named `route_ns_count`
//!   must never be read as a latency);
//! * informational — everything else (counts, sizes, thread counts):
//!   printed when it changed, never a failure.
//!
//! A directional metric regresses when it moves against its direction by
//! more than `--threshold` (a fraction; default 0.10 = 10%). The exit
//! code is nonzero iff at least one metric regressed, so CI can wire the
//! step soft-fail (`continue-on-error`) while still surfacing red.
//!
//! `--ignore PREFIX` (repeatable) drops every dotted path equal to the
//! prefix or nested under it (`PREFIX.`/`PREFIX[`) from both files
//! before comparing — the obs-overhead gate uses it to exclude the
//! `timings`/`exec`/`counters` subtrees an instrumented `BENCH_obs.json`
//! carries on top of the plain snapshot's shape.
//!
//! Usage: `bench_compare BASELINE.json FRESH.json [--threshold 0.10]
//! [--ignore PREFIX]...`

use std::process::ExitCode;

use serde_json::Value;

/// Flatten every numeric leaf of `v` into `(dotted.path, value)` rows.
fn flatten(v: &Value, prefix: &str, out: &mut Vec<(String, f64)>) {
    match v {
        Value::Object(pairs) => {
            for (k, child) in pairs {
                let path = if prefix.is_empty() { k.clone() } else { format!("{prefix}.{k}") };
                flatten(child, &path, out);
            }
        }
        Value::Array(items) => {
            for (i, child) in items.iter().enumerate() {
                flatten(child, &format!("{prefix}[{i}]"), out);
            }
        }
        Value::Number(_) => {
            if let Some(f) = v.as_f64() {
                out.push((prefix.to_string(), f));
            }
        }
        _ => {}
    }
}

/// The comparison direction a metric name implies.
#[derive(PartialEq, Clone, Copy)]
enum Direction {
    HigherBetter,
    LowerBetter,
    Informational,
}

fn direction(path: &str) -> Direction {
    // Classify on the leaf name only, so container keys like
    // "secs"-free row labels can't flip a metric's direction.
    let leaf = path.rsplit('.').next().unwrap_or(path);
    // Tallies first: a histogram leaf like `route_ns_count` is an event
    // count, not a latency, whatever substrings the name carries.
    if leaf.ends_with("_count") || leaf.ends_with("_hits") {
        Direction::Informational
    } else if leaf.contains("per_sec") || leaf.contains("speedup") {
        Direction::HigherBetter
    } else if leaf.contains("secs")
        || leaf.contains("_ns")
        || leaf.contains("rss")
        || leaf.contains("bytes")
    {
        Direction::LowerBetter
    } else {
        Direction::Informational
    }
}

/// Whether `path` equals `prefix` or lies nested under it (object child
/// `prefix.…` or array element `prefix[…`). Boundary-aware so
/// `--ignore timings` cannot swallow a sibling key `timings_v2`.
fn under_prefix(path: &str, prefix: &str) -> bool {
    path == prefix
        || path
            .strip_prefix(prefix)
            .is_some_and(|rest| rest.starts_with('.') || rest.starts_with('['))
}

fn load(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let tree: Value =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e:?}"));
    let mut rows = Vec::new();
    flatten(&tree, "", &mut rows);
    rows
}

fn main() -> ExitCode {
    let mut paths: Vec<String> = Vec::new();
    let mut threshold = 0.10f64;
    let mut ignored: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => {
                threshold = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threshold needs a fraction, e.g. 0.10");
            }
            "--ignore" => {
                ignored.push(args.next().expect("--ignore needs a dotted-path prefix"));
            }
            other if !other.starts_with("--") => paths.push(other.to_string()),
            other => panic!(
                "unknown argument {other:?} \
                 (expected BASELINE FRESH [--threshold F] [--ignore PREFIX]...)"
            ),
        }
    }
    assert!(
        paths.len() == 2 && threshold >= 0.0,
        "usage: bench_compare BASELINE.json FRESH.json [--threshold 0.10] [--ignore PREFIX]..."
    );
    let keep = |rows: Vec<(String, f64)>| -> Vec<(String, f64)> {
        rows.into_iter()
            .filter(|(p, _)| !ignored.iter().any(|i| under_prefix(p, i)))
            .collect()
    };
    let baseline = keep(load(&paths[0]));
    let fresh = keep(load(&paths[1]));

    let mut regressions = 0usize;
    let mut improvements = 0usize;
    let mut compared = 0usize;
    println!(
        "comparing {} (baseline) vs {} (fresh), threshold {:.0}%",
        paths[0],
        paths[1],
        threshold * 100.0
    );
    if !ignored.is_empty() {
        println!("ignoring subtrees: {}", ignored.join(", "));
    }
    for (path, old) in &baseline {
        let Some((_, new)) = fresh.iter().find(|(p, _)| p == path) else {
            println!("  - {path}: dropped (baseline {old}, absent in fresh)");
            continue;
        };
        let dir = direction(path);
        if dir == Direction::Informational {
            if old != new {
                println!("  ~ {path}: {old} -> {new} (informational)");
            }
            continue;
        }
        compared += 1;
        if *old == 0.0 {
            continue;
        }
        // Positive ratio = moved in the good direction.
        let ratio = match dir {
            Direction::HigherBetter => new / old - 1.0,
            Direction::LowerBetter => old / new - 1.0,
            Direction::Informational => unreachable!(),
        };
        if ratio < -threshold {
            regressions += 1;
            println!("  ✗ {path}: {old:.4} -> {new:.4} ({:+.1}% — REGRESSION)", ratio * 100.0);
        } else if ratio > threshold {
            improvements += 1;
            println!("  ✓ {path}: {old:.4} -> {new:.4} ({:+.1}%)", ratio * 100.0);
        }
    }
    for (path, new) in &fresh {
        if !baseline.iter().any(|(p, _)| p == path) {
            println!("  + {path}: new metric ({new})");
        }
    }
    println!(
        "{compared} directional metrics compared: {regressions} regressions, \
         {improvements} improvements beyond {:.0}%",
        threshold * 100.0
    );
    if regressions > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tallies_are_informational_before_directional_substrings() {
        // `route_ns_count` contains `_ns` but is an event tally.
        assert!(direction("timings.route_ns_count") == Direction::Informational);
        assert!(direction("counters.fast_path_hits") == Direction::Informational);
        assert!(direction("timings.route_ns") == Direction::LowerBetter);
        assert!(direction("rows[0].epochs_per_sec") == Direction::HigherBetter);
    }

    #[test]
    fn ignore_prefixes_respect_path_boundaries() {
        assert!(under_prefix("timings", "timings"));
        assert!(under_prefix("timings.route_ns", "timings"));
        assert!(under_prefix("rows[3].secs", "rows"));
        assert!(!under_prefix("timings_v2.route_ns", "timings"));
        assert!(!under_prefix("rows[3].secs", "rows[3].secs_b"));
    }
}
