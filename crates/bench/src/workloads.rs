//! Trial workloads shared by the `harness_scaling` criterion bench and the
//! `harness_smoke` CI binary, so both measure the same thing.

use rand::rngs::SmallRng;
use rand::{lemire_u64, Rng, SeedableRng};
use tlb_core::placement::Placement;
use tlb_core::user_protocol::{run_user_controlled, UserControlledConfig};
use tlb_core::weights::WeightSpec;
use tlb_experiments::harness::{self, trial_seed};

/// The PR 4 fused lazy kernel, replayed verbatim as the wide-lane
/// kernel's perf baseline: one single-stream word per walker drawn
/// inline (the serial xoshiro dependency chain the lane-striped
/// generator removes), fused coin + Lemire slot, affine gather on
/// regular graphs, branchless select. Draws `positions.len()` words from
/// `rng` — the historical stream shape, NOT the current one-parent-word
/// contract, which is exactly why it lives here and not in `tlb-walks`.
pub fn step_lazy_fused_reference<R: Rng + ?Sized>(
    g: &tlb_graphs::Graph,
    positions: &mut [tlb_graphs::NodeId],
    rng: &mut R,
) {
    let d = g.max_degree() as u64;
    if d == 0 {
        for _ in positions.iter() {
            rng.next_u64();
        }
        return;
    }
    if d > 0 && g.is_regular() {
        let flat = g.neighbors_flat();
        let du = d as usize;
        for v in positions.iter_mut() {
            let word = rng.next_u64();
            let slot = lemire_u64(word << 1, d) as usize;
            let dest = flat[*v as usize * du + slot];
            let mask = ((word >> 63) as tlb_graphs::NodeId).wrapping_neg();
            *v = dest ^ ((dest ^ *v) & mask);
        }
    } else {
        for v in positions.iter_mut() {
            let word = rng.next_u64();
            let slot = lemire_u64(word << 1, d) as usize;
            let nbrs = g.neighbors(*v);
            let dest = if slot < nbrs.len() { nbrs[slot] } else { *v };
            let mask = ((word >> 63) as tlb_graphs::NodeId).wrapping_neg();
            *v = dest ^ ((dest ^ *v) & mask);
        }
    }
}

/// One user-controlled trial whose cost varies roughly 8x with the seed
/// (200..=1600 tasks): the uneven fan-out the pool's chunk
/// self-scheduling is built for — a chunk-per-core split would leave the
/// cores that drew cheap trials idle.
pub fn uneven_user_trial(seed: u64) -> f64 {
    let m = 200 + (seed % 8) as usize * 200;
    let spec = WeightSpec::figure2(m, 16.0);
    let cfg = UserControlledConfig::default();
    let mut rng = SmallRng::seed_from_u64(seed);
    let tasks = spec.generate(&mut rng);
    run_user_controlled(150, &tasks, Placement::AllOnOne(0), &cfg, &mut rng).rounds as f64
}

/// One trial of the uneven benchmark *sweep*: point `i` simulates
/// `300·(i+1)` tasks, so later points cost several times more than early
/// ones — the straggler shape that makes per-point scheduling leave cores
/// idle at every point boundary while whole-sweep scheduling keeps them
/// fed until the sweep runs dry.
pub fn uneven_sweep_trial(point: usize, seed: u64) -> f64 {
    let m = 300 * (point + 1);
    let spec = WeightSpec::figure2(m, 16.0);
    let cfg = UserControlledConfig::default();
    let mut rng = SmallRng::seed_from_u64(seed);
    let tasks = spec.generate(&mut rng);
    run_user_controlled(150, &tasks, Placement::AllOnOne(0), &cfg, &mut rng).rounds as f64
}

/// Per-point seeds of the benchmark sweep (`splitmix` over the index so
/// neighbouring points get decorrelated streams).
pub fn sweep_point_seeds(points: usize) -> Vec<u64> {
    (0..points as u64).map(|p| trial_seed(0x5EED, p)).collect()
}

/// The scheduling baseline `run_sweep` replaces: one pool batch per sweep
/// point, with the implicit straggler barrier after each.
pub fn run_sweep_per_point(point_seeds: &[u64], trials: usize) -> Vec<Vec<f64>> {
    point_seeds
        .iter()
        .enumerate()
        .map(|(i, &seed)| harness::run_trials(trials, seed, |s| uneven_sweep_trial(i, s)))
        .collect()
}

/// The whole-sweep scheduling under test: the flattened single batch.
pub fn run_sweep_whole(point_seeds: &[u64], trials: usize) -> Vec<Vec<f64>> {
    harness::run_sweep(point_seeds, trials, uneven_sweep_trial)
}

/// The pre-pool execution strategy, kept as a measured baseline: split the
/// trials into one contiguous chunk per available core and run each chunk
/// on a freshly spawned scoped thread (what the rayon shim did on every
/// call before the persistent pool). Static partitioning finishes when the
/// slowest chunk does, so uneven trials leave cores idle — the gap to
/// `harness::run_trials` is exactly what the pool's self-scheduling buys.
pub fn run_trials_scoped<F>(trials: usize, base_seed: u64, f: F) -> Vec<f64>
where
    F: Fn(u64) -> f64 + Sync,
{
    // Same thread count as the pool (including the RAYON_NUM_THREADS
    // override) so the comparison isolates scheduling strategy and
    // per-call spawn cost, not core counts.
    let threads = rayon::current_num_threads().min(trials);
    let seeds: Vec<u64> = (0..trials as u64).map(|t| trial_seed(base_seed, t)).collect();
    if threads <= 1 {
        return seeds.into_iter().map(f).collect();
    }
    let chunk_size = trials.div_ceil(threads);
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = seeds
            .chunks(chunk_size)
            .map(|chunk| s.spawn(move || chunk.iter().map(|&seed| f(seed)).collect::<Vec<f64>>()))
            .collect();
        let mut out = Vec::with_capacity(trials);
        for h in handles {
            out.extend(h.join().expect("scoped baseline worker panicked"));
        }
        out
    })
}
