//! Peak resident-set-size probe shared by the bench binaries.
//!
//! Linux exposes the process high-water mark as the `VmHWM` line of
//! `/proc/self/status` (in kB). Other platforms get [`None`] — callers
//! must treat the reading as best-effort and keep their output shape
//! stable (emit `null`, not a fake zero), so snapshots from different
//! hosts stay comparable.

/// Peak resident set size of this process in bytes, if the platform
/// exposes it (`VmHWM` in `/proc/self/status` on Linux).
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    // "VmHWM:      12345 kB"
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Render an `Option<u64>` byte count as a JSON fragment: the number, or
/// `null` when the platform gave no reading.
pub fn rss_json(bytes: Option<u64>) -> String {
    match bytes {
        Some(b) => b.to_string(),
        None => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn linux_reports_a_positive_peak() {
        // Touch some memory so the high-water mark is certainly nonzero.
        let v = vec![1u8; 1 << 20];
        assert!(v.iter().map(|&b| b as u64).sum::<u64>() > 0);
        let rss = peak_rss_bytes().expect("VmHWM present on Linux");
        assert!(rss > 1 << 20, "peak RSS {rss} should exceed 1 MiB");
    }

    #[test]
    fn json_rendering_handles_both_cases() {
        assert_eq!(rss_json(Some(2048)), "2048");
        assert_eq!(rss_json(None), "null");
    }
}
