//! # tlb-bench
//!
//! Criterion benchmarks regenerating (at benchmark scale) every table and
//! figure of the paper, plus ablations and substrate micro-kernels. Each
//! bench target corresponds to a row of the experiment index in
//! `DESIGN.md` §3:
//!
//! | bench target          | experiment id |
//! |-----------------------|---------------|
//! | `table1`              | T1            |
//! | `figure1`             | F1            |
//! | `figure2`             | F2            |
//! | `resource_controlled` | A1            |
//! | `tight_threshold`     | A2            |
//! | `ablations`           | A3/A4 + stack-order & walk-kind ablations |
//! | `kernels`             | substrate micro-benches |
//! | `harness_scaling`     | worker-pool speedup of the trial fan-out |
//!
//! Criterion measures the wall time of the simulation/measurement kernels;
//! the `tlb-experiments` binaries produce the full-trial-count *data*. The
//! `harness_smoke` binary re-runs the `harness_scaling` comparison outside
//! criterion and writes a `BENCH_harness.json` snapshot for the CI perf
//! trajectory.

pub mod rss;
pub mod workloads;
