//! Property-based tests for the harness/statistics/output layer.

use proptest::prelude::*;
use tlb_experiments::harness;
use tlb_experiments::output::Table;
use tlb_experiments::stats::{linear_fit, Summary};

proptest! {
    /// The parallel harness is a pure fan-out: results always equal the
    /// sequential reference, independent of scheduling.
    #[test]
    fn parallel_equals_sequential(trials in 1usize..300, seed in any::<u64>()) {
        let f = |s: u64| (s >> 5) as f64 * 0.5;
        prop_assert_eq!(
            harness::run_trials(trials, seed, f),
            harness::run_trials_sequential(trials, seed, f)
        );
    }

    /// Whole-sweep scheduling is observationally pure scheduling: for any
    /// point-seed list and trial count, `run_sweep` output is
    /// bit-identical to the per-point `run_trials` loop it replaced.
    #[test]
    fn run_sweep_equals_per_point_loop(
        point_seeds in proptest::collection::vec(any::<u64>(), 0..12),
        trials in 0usize..60,
    ) {
        // Mix point index and seed nonlinearly so scheduling mistakes
        // (wrong point, wrong trial, wrong order) cannot cancel out.
        let f = |point: usize, s: u64| {
            (s ^ (point as u64).wrapping_mul(0x9E3779B97F4A7C15)) as f64
        };
        let swept = harness::run_sweep(&point_seeds, trials, f);
        let per_point: Vec<Vec<f64>> = point_seeds
            .iter()
            .enumerate()
            .map(|(i, &seed)| harness::run_trials(trials, seed, |s| f(i, s)))
            .collect();
        prop_assert_eq!(swept, per_point);
    }

    /// Derived trial seeds never collide within a sweep and differ across
    /// base seeds.
    #[test]
    fn trial_seeds_injective(base in any::<u64>()) {
        let seeds: std::collections::HashSet<u64> =
            (0..2000).map(|t| harness::trial_seed(base, t)).collect();
        prop_assert_eq!(seeds.len(), 2000);
    }

    /// Summary invariants: min <= mean <= max, non-negative spread, exact
    /// count.
    #[test]
    fn summary_invariants(samples in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::of(&samples);
        prop_assert_eq!(s.count, samples.len());
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.std >= 0.0);
        prop_assert!(s.ci95 >= 0.0);
    }

    /// Linear fit recovers planted lines exactly (within float noise).
    #[test]
    fn linear_fit_recovers_planted_line(
        a in -100.0f64..100.0,
        b in -10.0f64..10.0,
        xs in proptest::collection::vec(-50.0f64..50.0, 2..50),
    ) {
        // Need at least two distinct x values for an identifiable slope.
        let spread = xs.iter().cloned().fold(f64::MIN, f64::max)
            - xs.iter().cloned().fold(f64::MAX, f64::min);
        prop_assume!(spread > 1e-6);
        let ys: Vec<f64> = xs.iter().map(|x| a + b * x).collect();
        let (ahat, bhat, r2) = linear_fit(&xs, &ys);
        prop_assert!((ahat - a).abs() < 1e-6 * (1.0 + a.abs()), "{ahat} vs {a}");
        prop_assert!((bhat - b).abs() < 1e-6 * (1.0 + b.abs()), "{bhat} vs {b}");
        prop_assert!(r2 > 1.0 - 1e-9);
    }

    /// Tables survive a CSV render and a serde JSON roundtrip for
    /// arbitrary cell content.
    #[test]
    fn table_roundtrips(
        cells in proptest::collection::vec(
            proptest::collection::vec("[ -~]{0,12}", 3..=3), 0..20),
    ) {
        let mut t = Table::new("prop", "prop table", &["a", "b", "c"]);
        for row in cells {
            t.push_row(row);
        }
        let json = serde_json::to_string(&t).unwrap();
        let back: Table = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &t);
        // CSV line count = header + rows (cells are single-line by
        // construction).
        prop_assert_eq!(t.to_csv().lines().count(), 1 + t.rows.len());
    }
}
