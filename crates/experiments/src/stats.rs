//! Summary statistics for trial batches.

use serde::{Deserialize, Serialize};

/// Mean / spread summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for count < 2).
    pub std: f64,
    /// Half-width of the normal-approximation 95% confidence interval.
    pub ci95: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample.
    ///
    /// # Panics
    /// On an empty sample.
    pub fn of(samples: &[f64]) -> Summary {
        assert!(!samples.is_empty(), "cannot summarize an empty sample");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        };
        let std = var.sqrt();
        let sem = std / (n as f64).sqrt();
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in samples {
            min = min.min(x);
            max = max.max(x);
        }
        Summary { count: n, mean, std, ci95: 1.96 * sem, min, max }
    }

    /// `mean ± ci95` formatted compactly.
    pub fn display(&self) -> String {
        format!("{:.2} ± {:.2}", self.mean, self.ci95)
    }
}

/// Ordinary least squares fit `y ≈ a + b·x`; returns `(a, b, r²)`.
///
/// Used by the shape checks in EXPERIMENTS.md (e.g. Figure 1's
/// `rounds ~ c·log m` and Figure 2's `rounds/log m ~ c·w_max`).
///
/// # Panics
/// If inputs differ in length or have fewer than 2 points.
pub fn linear_fit(x: &[f64], y: &[f64]) -> (f64, f64, f64) {
    assert_eq!(x.len(), y.len(), "x/y length mismatch");
    assert!(x.len() >= 2, "need at least two points");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let sxy: f64 = x.iter().zip(y.iter()).map(|(a, b)| (a - mx) * (b - my)).sum();
    let sxx: f64 = x.iter().map(|a| (a - mx) * (a - mx)).sum();
    let syy: f64 = y.iter().map(|b| (b - my) * (b - my)).sum();
    let b = if sxx == 0.0 { 0.0 } else { sxy / sxx };
    let a = my - b * mx;
    let r2 = if sxx == 0.0 || syy == 0.0 { 1.0 } else { (sxy * sxy) / (sxx * syy) };
    (a, b, r2)
}

/// Pearson correlation of two equal-length samples.
pub fn correlation(x: &[f64], y: &[f64]) -> f64 {
    let (_, _, r2) = linear_fit(x, y);
    let (_, b, _) = linear_fit(x, y);
    r2.sqrt() * b.signum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constants() {
        let s = Summary::of(&[3.0, 3.0, 3.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.min, 3.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.count, 3);
    }

    #[test]
    fn summary_known_values() {
        // mean 2, var ((1)^2+(0)^2+(1)^2)/2 = 1 -> std 1
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std - 1.0).abs() < 1e-12);
        assert!((s.ci95 - 1.96 / 3f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::of(&[5.0]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.mean, 5.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn summary_empty_panics() {
        Summary::of(&[]);
    }

    #[test]
    fn linear_fit_exact_line() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [3.0, 5.0, 7.0, 9.0]; // y = 1 + 2x
        let (a, b, r2) = linear_fit(&x, &y);
        assert!((a - 1.0).abs() < 1e-12);
        assert!((b - 2.0).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_noisy_line_high_r2() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v + ((v * 7.3).sin())).collect();
        let (_, b, r2) = linear_fit(&x, &y);
        assert!((b - 2.0).abs() < 0.05);
        assert!(r2 > 0.99);
    }

    #[test]
    fn correlation_signs() {
        let x = [1.0, 2.0, 3.0];
        let up = [1.0, 2.0, 3.1];
        let down = [3.0, 2.0, 0.9];
        assert!(correlation(&x, &up) > 0.99);
        assert!(correlation(&x, &down) < -0.99);
    }

    #[test]
    fn display_is_compact() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert!(s.display().contains('±'));
    }
}
