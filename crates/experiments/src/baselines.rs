//! Uniform-task baselines.
//!
//! The paper's bounds for weighted tasks "match the bounds of Ackermann et
//! al. \[1\] and Hoefer & Sauerwald \[2\] for uniform tasks"; the baseline
//! against which the weighted runs are compared is therefore the *same*
//! protocol with all weights 1. This module packages those runs so the
//! figures can print weighted-vs-uniform ratios.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_core::placement::Placement;
use tlb_core::resource_protocol::{run_resource_controlled, ResourceControlledConfig};
use tlb_core::task::TaskSet;
use tlb_core::user_protocol::{run_user_controlled, UserControlledConfig};
use tlb_graphs::Graph;

use crate::harness;
use crate::stats::Summary;

/// Mean balancing time of the *uniform-task* user-controlled protocol
/// (Ackermann et al. setting) with `m` tasks on `n` resources, all
/// starting on resource 0.
pub fn user_uniform_baseline(
    n: usize,
    m: usize,
    cfg: &UserControlledConfig,
    trials: usize,
    seed: u64,
) -> Summary {
    let tasks = TaskSet::uniform(m);
    let samples = harness::run_trials(trials, seed, |s| {
        let mut rng = SmallRng::seed_from_u64(s);
        run_user_controlled(n, &tasks, Placement::AllOnOne(0), cfg, &mut rng).rounds as f64
    });
    Summary::of(&samples)
}

/// Mean balancing time of the *uniform-task* resource-controlled protocol
/// (Hoefer–Sauerwald setting) on graph `g`.
pub fn resource_uniform_baseline(
    g: &Graph,
    m: usize,
    cfg: &ResourceControlledConfig,
    trials: usize,
    seed: u64,
) -> Summary {
    let tasks = TaskSet::uniform(m);
    let samples = harness::run_trials(trials, seed, |s| {
        let mut rng = SmallRng::seed_from_u64(s);
        run_resource_controlled(g, &tasks, Placement::AllOnOne(0), cfg, &mut rng).rounds as f64
    });
    Summary::of(&samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlb_graphs::generators::complete;

    #[test]
    fn uniform_user_baseline_is_logarithmic_ish() {
        let cfg = UserControlledConfig::default();
        let small = user_uniform_baseline(50, 200, &cfg, 20, 1);
        let large = user_uniform_baseline(50, 2000, &cfg, 20, 2);
        // 10x more tasks should cost far less than 10x more rounds.
        assert!(
            large.mean < small.mean * 5.0 + 10.0,
            "rounds grew too fast: {} -> {}",
            small.mean,
            large.mean
        );
    }

    #[test]
    fn uniform_resource_baseline_runs() {
        let g = complete(20);
        let cfg = ResourceControlledConfig::default();
        let s = resource_uniform_baseline(&g, 200, &cfg, 10, 3);
        assert!(s.mean >= 1.0);
        assert!(s.count == 10);
    }
}
