//! Rayon-parallel trial fan-out with deterministic seeding.
//!
//! Section 7 of the paper averages every data point over 1000 independent
//! trials. Trials are embarrassingly parallel; the harness fans them out
//! over the rayon thread pool while keeping results bit-reproducible: trial
//! `t` of an experiment with base seed `s` always uses the derived seed
//! `splitmix(s, t)`, independent of thread scheduling.

use parking_lot::Mutex;
use rayon::prelude::*;

/// Derive the seed of trial `index` from a base seed (splitmix64 over the
/// pair, so neighbouring trials get decorrelated streams).
#[inline]
pub fn trial_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Run `trials` independent trials in parallel; `f(seed)` must be a pure
/// function of its seed. Results are returned in trial order.
pub fn run_trials<F>(trials: usize, base_seed: u64, f: F) -> Vec<f64>
where
    F: Fn(u64) -> f64 + Sync,
{
    (0..trials as u64)
        .into_par_iter()
        .map(|t| f(trial_seed(base_seed, t)))
        .collect()
}

/// Sequential variant (used by the harness-scaling ablation to measure the
/// rayon speedup, and handy under a profiler).
pub fn run_trials_sequential<F>(trials: usize, base_seed: u64, f: F) -> Vec<f64>
where
    F: Fn(u64) -> f64,
{
    (0..trials as u64).map(|t| f(trial_seed(base_seed, t))).collect()
}

/// Parallel trials with a progress callback invoked after each completed
/// trial with the number finished so far. The callback is serialized
/// through a mutex, so keep it cheap (the drivers print a dot every few
/// percent).
pub fn run_trials_with_progress<F, P>(trials: usize, base_seed: u64, f: F, progress: P) -> Vec<f64>
where
    F: Fn(u64) -> f64 + Sync,
    P: FnMut(usize) + Send,
{
    let done = Mutex::new((0usize, progress));
    (0..trials as u64)
        .into_par_iter()
        .map(|t| {
            let r = f(trial_seed(base_seed, t));
            let mut guard = done.lock();
            guard.0 += 1;
            let count = guard.0;
            (guard.1)(count);
            r
        })
        .collect()
}

/// Run a generic per-trial function returning any `Send` payload (used
/// when a trial yields more than one metric).
pub fn run_trials_map<T, F>(trials: usize, base_seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    (0..trials as u64)
        .into_par_iter()
        .map(|t| f(trial_seed(base_seed, t)))
        .collect()
}

/// Streaming variant: trials run on the rayon pool while a consumer
/// receives `(trial_index, result)` pairs over a crossbeam channel *as
/// they finish* (completion order, not trial order). Useful for live
/// dashboards and for aborting long sweeps early; the returned vector is
/// whatever the consumer produced.
///
/// The consumer runs on the calling thread; the channel is bounded so a
/// slow consumer back-pressures the workers instead of buffering the
/// whole sweep.
pub fn run_trials_streaming<T, F, C, O>(trials: usize, base_seed: u64, f: F, consumer: C) -> O
where
    T: Send,
    F: Fn(u64) -> T + Sync + Send,
    C: FnOnce(crossbeam::channel::Receiver<(usize, T)>) -> O,
{
    use std::sync::atomic::{AtomicBool, Ordering};

    let (tx, rx) = crossbeam::channel::bounded::<(usize, T)>(256);
    // Flipped when the consumer drops the receiver, so remaining trials
    // are skipped instead of computed into a closed channel.
    let aborted = AtomicBool::new(false);
    let aborted = &aborted;
    crossbeam::scope(|scope| {
        scope.spawn(move |_| {
            (0..trials as u64).into_par_iter().for_each_with(tx, |tx, t| {
                if aborted.load(Ordering::Relaxed) {
                    return;
                }
                let r = f(trial_seed(base_seed, t));
                if tx.send((t as usize, r)).is_err() {
                    // Receiver dropped early (consumer aborted): stop
                    // burning CPU on trials nobody will read.
                    aborted.store(true, Ordering::Relaxed);
                }
            });
        });
        consumer(rx)
    })
    .expect("streaming harness thread panicked")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn seeds_are_distinct_and_deterministic() {
        let seeds: Vec<u64> = (0..1000).map(|t| trial_seed(42, t)).collect();
        let set: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(set.len(), seeds.len(), "seed collision");
        assert_eq!(trial_seed(42, 7), trial_seed(42, 7));
        assert_ne!(trial_seed(42, 7), trial_seed(43, 7));
    }

    #[test]
    fn parallel_matches_sequential() {
        let f = |seed: u64| (seed % 1000) as f64;
        let par = run_trials(500, 9, f);
        let seq = run_trials_sequential(500, 9, f);
        assert_eq!(par, seq);
    }

    #[test]
    fn results_in_trial_order() {
        let out = run_trials(100, 0, |s| s as f64);
        let expected: Vec<f64> = (0..100).map(|t| trial_seed(0, t) as f64).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn progress_callback_sees_every_trial() {
        let hits = AtomicUsize::new(0);
        let out = run_trials_with_progress(
            64,
            1,
            |s| s as f64,
            |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(out.len(), 64);
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn streaming_delivers_every_trial_once() {
        let seen = run_trials_streaming(
            200,
            3,
            |s| s % 97,
            |rx| {
                let mut got: Vec<(usize, u64)> = rx.iter().collect();
                got.sort_unstable();
                got
            },
        );
        assert_eq!(seen.len(), 200);
        for (i, (idx, val)) in seen.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*val, trial_seed(3, i as u64) % 97);
        }
    }

    #[test]
    fn streaming_consumer_can_abort_early() {
        let first_five = run_trials_streaming(1000, 7, |s| s, |rx| rx.iter().take(5).count());
        assert_eq!(first_five, 5);
        // Workers observing the dropped receiver must not panic the pool.
    }

    #[test]
    fn streaming_abort_skips_remaining_work() {
        let computed = AtomicUsize::new(0);
        let taken = run_trials_streaming(
            100_000,
            7,
            |s| {
                computed.fetch_add(1, Ordering::Relaxed);
                s
            },
            |rx| rx.iter().take(5).count(),
        );
        assert_eq!(taken, 5);
        // Early abort must save actual computation, not just delivery.
        // (Bound is loose: in-flight chunks finish their current trial and
        // the channel buffer may fill before the abort flag propagates.)
        let done = computed.load(Ordering::Relaxed);
        assert!(done < 100_000 / 2, "abort did not save work: {done} of 100000 trials computed");
    }

    #[test]
    fn map_variant_carries_structs() {
        #[derive(PartialEq, Debug)]
        struct Pair(u64, f64);
        let out = run_trials_map(10, 5, |s| Pair(s, s as f64 * 0.5));
        assert_eq!(out.len(), 10);
        assert_eq!(out[3], Pair(trial_seed(5, 3), trial_seed(5, 3) as f64 * 0.5));
    }
}
