//! Rayon-parallel trial fan-out with deterministic seeding.
//!
//! Section 7 of the paper averages every data point over 1000 independent
//! trials. Trials are embarrassingly parallel; the harness fans them out
//! over the rayon shim's persistent worker pool while keeping results
//! bit-reproducible: trial `t` of an experiment with base seed `s` always
//! uses the derived seed `splitmix(s, t)`, independent of thread
//! scheduling, and every parallel entry point returns exactly what its
//! sequential evaluation would. The pool self-schedules fixed-size chunks,
//! so sweeps whose trials have very different costs (slow-mixing graphs
//! next to fast ones) still keep every core busy.
//!
//! Whole sweeps go through [`run_sweep`], which flattens the
//! `(sweep-point × trial)` grid into one pool batch — no per-point
//! straggler barrier — while staying bit-identical to the per-point
//! [`run_trials`] loop.
//!
//! The harness is also generic over the protocol abstraction: a
//! [`ProtocolPoint`] names a `(protocol × graph × workload × placement)`
//! cell through the unified [`MatrixProtocol`] surface (core
//! [`ProtocolKind`] variants and `tlb-baselines` adapters alike), and
//! [`run_protocol_trials`]/[`run_protocol_sweep`] fan its trials out over
//! the pool, returning full [`ProtocolOutcome`]s. Trait dispatch adds no
//! RNG draws, so these paths are bit-identical to calling the concrete
//! `run_*` entry points with the same derived seeds.

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use tlb_baselines::BaselineConfig;
use tlb_core::placement::Placement;
use tlb_core::protocol::{AnyStepper, ProtocolKind, ProtocolOutcome};
use tlb_core::task::TaskSet;
use tlb_core::weights::WeightSpec;
use tlb_graphs::Graph;

/// Bound of the streaming-variant channel: a slow consumer back-pressures
/// the workers after this many undelivered results (public so tests can
/// derive deterministic abort bounds from it).
pub const STREAM_CHANNEL_CAPACITY: usize = 256;

/// Derive the seed of trial `index` from a base seed (splitmix64 over the
/// pair, so neighbouring trials get decorrelated streams).
#[inline]
pub fn trial_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Run `trials` independent trials in parallel; `f(seed)` must be a pure
/// function of its seed. Results are returned in trial order.
pub fn run_trials<F>(trials: usize, base_seed: u64, f: F) -> Vec<f64>
where
    F: Fn(u64) -> f64 + Sync,
{
    (0..trials as u64)
        .into_par_iter()
        .map(|t| f(trial_seed(base_seed, t)))
        .collect()
}

/// Sequential variant (used by the harness-scaling ablation to measure the
/// pool speedup, and handy under a profiler).
pub fn run_trials_sequential<F>(trials: usize, base_seed: u64, f: F) -> Vec<f64>
where
    F: Fn(u64) -> f64,
{
    (0..trials as u64).map(|t| f(trial_seed(base_seed, t))).collect()
}

/// Parallel trials with a progress callback. Completions are counted with
/// an atomic (workers never serialize on the count), and only the callback
/// invocation itself takes a lock — a slow callback delays at most the
/// workers that have a completion to report, not the whole pool. Each
/// invocation receives a distinct completion count in `1..=trials`, but
/// counts can arrive out of order under parallelism; drivers that print
/// "k% done" should track the maximum seen.
pub fn run_trials_with_progress<F, P>(trials: usize, base_seed: u64, f: F, progress: P) -> Vec<f64>
where
    F: Fn(u64) -> f64 + Sync,
    P: FnMut(usize) + Send,
{
    let done = AtomicUsize::new(0);
    let progress = Mutex::new(progress);
    (0..trials as u64)
        .into_par_iter()
        .map(|t| {
            let r = f(trial_seed(base_seed, t));
            let count = done.fetch_add(1, Ordering::Relaxed) + 1;
            (progress.lock())(count);
            r
        })
        .collect()
}

/// Run a generic per-trial function returning any `Send` payload (used
/// when a trial yields more than one metric).
pub fn run_trials_map<T, F>(trials: usize, base_seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    (0..trials as u64)
        .into_par_iter()
        .map(|t| f(trial_seed(base_seed, t)))
        .collect()
}

/// Run a whole sweep — `point_seeds.len()` parameter points × `trials`
/// trials each — as **one** self-scheduled pool batch instead of one
/// batch per point.
///
/// A per-point loop (`for seed in point_seeds { run_trials(trials, seed,
/// …) }`) puts a barrier after every sweep point: each call waits for its
/// slowest trial while the other cores idle, and sweeps whose points have
/// very different costs (slow-mixing graphs next to fast ones, tight
/// thresholds next to loose ones) pay that straggler tax once per point.
/// Flattening the `(point, trial)` grid into a single batch lets the
/// pool's chunk self-scheduling fill every core until the *whole sweep*
/// runs dry — the only barrier is the final one.
///
/// Output contract (proptest-pinned): `run_sweep(seeds, trials, f)[i]` is
/// bit-identical to `run_trials(trials, seeds[i], |s| f(i, s))`, for any
/// thread count — trial `t` of point `i` always runs with seed
/// `trial_seed(point_seeds[i], t)`, regardless of scheduling.
pub fn run_sweep<F>(point_seeds: &[u64], trials: usize, f: F) -> Vec<Vec<f64>>
where
    F: Fn(usize, u64) -> f64 + Sync,
{
    run_sweep_map(point_seeds, trials, f)
}

/// Generic-payload variant of [`run_sweep`] (the `run_trials_map` analog).
pub fn run_sweep_map<T, F>(point_seeds: &[u64], trials: usize, f: F) -> Vec<Vec<T>>
where
    T: Send,
    F: Fn(usize, u64) -> T + Sync,
{
    if trials == 0 {
        return point_seeds.iter().map(|_| Vec::new()).collect();
    }
    let total = point_seeds.len() * trials;
    let mut flat: Vec<T> = (0..total as u64)
        .into_par_iter()
        .map(|k| {
            let point = k as usize / trials;
            let t = (k as usize % trials) as u64;
            f(point, trial_seed(point_seeds[point], t))
        })
        .collect();
    // Unflatten back-to-front so each split is O(trials).
    let mut out: Vec<Vec<T>> = Vec::with_capacity(point_seeds.len());
    for p in (0..point_seeds.len()).rev() {
        out.push(flat.split_off(p * trials));
    }
    out.reverse();
    out
}

/// Which protocol a sweep cell runs: a core variant (through the unified
/// [`ProtocolKind`] dispatch) or a `tlb-baselines` stepper adapter. This
/// is the experiment-side closure of the protocol abstraction — the enum
/// a driver can hold for "any protocol at all".
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixProtocol {
    /// One of the three core protocols.
    Core(ProtocolKind),
    /// A related-work baseline run as a rebalancing protocol.
    Baseline(BaselineConfig),
}

impl MatrixProtocol {
    /// Short stable name (report/CSV key).
    pub fn label(&self) -> String {
        match self {
            MatrixProtocol::Core(kind) => kind.label().to_string(),
            MatrixProtocol::Baseline(cfg) => cfg.rule.label(),
        }
    }

    /// Construct the stepper, consuming RNG exactly as the variant's
    /// one-shot entry point would.
    pub fn new_stepper(
        &self,
        g: &Graph,
        tasks: &TaskSet,
        placement: Placement,
        rng: &mut dyn RngCore,
    ) -> AnyStepper {
        match self {
            MatrixProtocol::Core(kind) => kind.new_stepper(g, tasks, placement, rng),
            MatrixProtocol::Baseline(cfg) => cfg.new_stepper(g, tasks, placement, rng),
        }
    }
}

/// One `(protocol × graph × workload × placement)` cell of a protocol
/// sweep. Each trial regenerates the workload from its derived seed, so
/// the cell is a pure function of `seed` like every other harness entry
/// point.
#[derive(Debug, Clone)]
pub struct ProtocolPoint {
    /// Graph the stepper runs on (the user protocol ignores topology but
    /// still uses `graph.num_nodes()` as its resource count).
    pub graph: Graph,
    /// Per-trial workload generator.
    pub weights: WeightSpec,
    /// Initial placement.
    pub placement: Placement,
    /// Which protocol runs the cell.
    pub protocol: MatrixProtocol,
    /// Base seed of the cell (trial `t` runs with `trial_seed(seed, t)`).
    pub seed: u64,
}

/// One trial of a protocol point: generate the workload, run the
/// protocol to completion through the trait surface, report the outcome.
fn run_protocol_once(p: &ProtocolPoint, seed: u64) -> ProtocolOutcome {
    let mut rng = SmallRng::seed_from_u64(seed);
    let tasks = p.weights.generate(&mut rng);
    let mut stepper = p.protocol.new_stepper(&p.graph, &tasks, p.placement.clone(), &mut rng);
    stepper.run(&p.graph, &mut rng);
    stepper.into_outcome()
}

/// Run `trials` independent trials of one protocol point in parallel;
/// outcomes are returned in trial order.
pub fn run_protocol_trials(point: &ProtocolPoint, trials: usize) -> Vec<ProtocolOutcome> {
    run_trials_map(trials, point.seed, |s| run_protocol_once(point, s))
}

/// Run a whole protocol sweep — every `(point × trial)` pair as **one**
/// self-scheduled pool batch, like [`run_sweep`]. `out[i]` is
/// bit-identical to `run_protocol_trials(&points[i], trials)`.
pub fn run_protocol_sweep(points: &[ProtocolPoint], trials: usize) -> Vec<Vec<ProtocolOutcome>> {
    let seeds: Vec<u64> = points.iter().map(|p| p.seed).collect();
    run_sweep_map(&seeds, trials, |i, s| run_protocol_once(&points[i], s))
}

/// Streaming variant: trials run on the worker pool while a consumer
/// receives `(trial_index, result)` pairs over a crossbeam channel *as
/// they finish* (completion order, not trial order). Useful for live
/// dashboards and for aborting long sweeps early; the returned vector is
/// whatever the consumer produced.
///
/// The consumer runs on the calling thread; the channel is bounded at
/// [`STREAM_CHANNEL_CAPACITY`] so a slow consumer back-pressures the
/// workers instead of buffering the whole sweep.
pub fn run_trials_streaming<T, F, C, O>(trials: usize, base_seed: u64, f: F, consumer: C) -> O
where
    T: Send,
    F: Fn(u64) -> T + Sync + Send,
    C: FnOnce(crossbeam::channel::Receiver<(usize, T)>) -> O,
{
    use std::sync::atomic::AtomicBool;

    let (tx, rx) = crossbeam::channel::bounded::<(usize, T)>(STREAM_CHANNEL_CAPACITY);
    // Flipped when the consumer drops the receiver, so remaining trials
    // are skipped instead of computed into a closed channel.
    let aborted = AtomicBool::new(false);
    let aborted = &aborted;
    crossbeam::scope(|scope| {
        scope.spawn(move |_| {
            (0..trials as u64).into_par_iter().for_each_with(tx, |tx, t| {
                if aborted.load(Ordering::Relaxed) {
                    return;
                }
                let r = f(trial_seed(base_seed, t));
                if tx.send((t as usize, r)).is_err() {
                    // Receiver dropped early (consumer aborted): stop
                    // burning CPU on trials nobody will read.
                    aborted.store(true, Ordering::Relaxed);
                }
            });
        });
        consumer(rx)
    })
    .expect("streaming harness thread panicked")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_distinct_and_deterministic() {
        let seeds: Vec<u64> = (0..1000).map(|t| trial_seed(42, t)).collect();
        let set: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(set.len(), seeds.len(), "seed collision");
        assert_eq!(trial_seed(42, 7), trial_seed(42, 7));
        assert_ne!(trial_seed(42, 7), trial_seed(43, 7));
    }

    #[test]
    fn parallel_matches_sequential() {
        let f = |seed: u64| (seed % 1000) as f64;
        let par = run_trials(500, 9, f);
        let seq = run_trials_sequential(500, 9, f);
        assert_eq!(par, seq);
    }

    #[test]
    fn results_in_trial_order() {
        let out = run_trials(100, 0, |s| s as f64);
        let expected: Vec<f64> = (0..100).map(|t| trial_seed(0, t) as f64).collect();
        assert_eq!(out, expected);
    }

    /// Trial whose cost varies ~100x with the seed — the uneven workload
    /// the pool's chunk self-scheduling exists for.
    fn uneven(seed: u64) -> f64 {
        let mut acc = seed;
        for _ in 0..(seed % 97) * 37 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        }
        (acc % 100_000) as f64
    }

    #[test]
    fn all_entry_points_match_sequential_on_uneven_work() {
        let trials = 257;
        let seq = run_trials_sequential(trials, 11, uneven);
        assert_eq!(run_trials(trials, 11, uneven), seq);
        assert_eq!(run_trials_map(trials, 11, uneven), seq);
        assert_eq!(run_trials_with_progress(trials, 11, uneven, |_| {}), seq);
        let mut streamed =
            run_trials_streaming(trials, 11, uneven, |rx| rx.iter().collect::<Vec<(usize, f64)>>());
        streamed.sort_unstable_by_key(|&(i, _)| i);
        let streamed: Vec<f64> = streamed.into_iter().map(|(_, v)| v).collect();
        assert_eq!(streamed, seq);
    }

    #[test]
    fn pool_is_reused_across_successive_calls() {
        for round in 0..20 {
            let seq = run_trials_sequential(64, round, uneven);
            assert_eq!(run_trials(64, round, uneven), seq, "round {round}");
        }
        // The shim's persistent pool spawns its workers exactly once.
        assert_eq!(rayon::worker_spawn_count(), rayon::current_num_threads().saturating_sub(1));
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let bad = trial_seed(5, 17);
        let result = std::panic::catch_unwind(|| {
            run_trials(64, 5, move |s| if s == bad { panic!("trial exploded") } else { 1.0 })
        });
        assert!(result.is_err(), "a panicking trial must panic the caller");
        // The pool stays usable after the propagated panic.
        assert_eq!(run_trials(8, 0, |s| s as f64), run_trials_sequential(8, 0, |s| s as f64));
    }

    #[test]
    fn progress_callback_sees_every_trial() {
        let hits = AtomicUsize::new(0);
        let out = run_trials_with_progress(
            64,
            1,
            |s| s as f64,
            |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(out.len(), 64);
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn progress_reports_each_count_exactly_once() {
        let counts = Mutex::new(Vec::new());
        run_trials_with_progress(100, 2, |s| s as f64, |c| counts.lock().push(c));
        let mut got = counts.into_inner();
        got.sort_unstable();
        assert_eq!(got, (1..=100).collect::<Vec<_>>());
    }

    #[test]
    fn streaming_delivers_every_trial_once() {
        let seen = run_trials_streaming(
            200,
            3,
            |s| s % 97,
            |rx| {
                let mut got: Vec<(usize, u64)> = rx.iter().collect();
                got.sort_unstable();
                got
            },
        );
        assert_eq!(seen.len(), 200);
        for (i, (idx, val)) in seen.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*val, trial_seed(3, i as u64) % 97);
        }
    }

    #[test]
    fn streaming_consumer_can_abort_early() {
        let first_five = run_trials_streaming(1000, 7, |s| s, |rx| rx.iter().take(5).count());
        assert_eq!(first_five, 5);
        // Workers observing the dropped receiver must not panic the pool.
    }

    #[test]
    fn streaming_abort_skips_remaining_work() {
        let computed = AtomicUsize::new(0);
        let trials = 100_000;
        let taken = run_trials_streaming(
            trials,
            7,
            |s| {
                computed.fetch_add(1, Ordering::Relaxed);
                s
            },
            |rx| rx.iter().take(5).count(),
        );
        assert_eq!(taken, 5);
        // Deterministic bound, independent of core count and scheduling:
        // until the receiver drops, at most `taken` delivered plus
        // `STREAM_CHANNEL_CAPACITY` buffered results can have been
        // computed (the bounded channel blocks every further send), plus
        // one in-flight trial per executor blocked in `send`; after the
        // drop, each executor computes at most one more trial before its
        // failed send raises the abort flag and the per-trial check skips
        // the rest.
        let executors = rayon::current_num_threads();
        let bound = taken + STREAM_CHANNEL_CAPACITY + 2 * executors;
        let done = computed.load(Ordering::Relaxed);
        assert!(done <= bound, "abort did not bound work: {done} computed, bound {bound}");
        assert!(done < trials, "abort saved no work at all");
    }

    #[test]
    fn streaming_consumer_can_make_parallel_calls() {
        // Deadlock regression: the producer's batch back-pressures on the
        // bounded channel while the consumer issues its own parallel call
        // (live-dashboard aggregation). The pool must run the consumer's
        // call inline instead of queueing behind the in-flight batch —
        // queueing deadlocks because the batch is waiting on the consumer.
        let trials = STREAM_CHANNEL_CAPACITY * 4;
        let total = run_trials_streaming(
            trials,
            13,
            |s| s % 11,
            |rx| {
                let mut sum = 0u64;
                for (i, (_, v)) in rx.iter().enumerate() {
                    sum += v;
                    if i == 3 {
                        // Parallel call while the producer is blocked on us.
                        let nested = run_trials(32, 99, |s| (s % 7) as f64);
                        assert_eq!(nested, run_trials_sequential(32, 99, |s| (s % 7) as f64));
                    }
                }
                sum
            },
        );
        let expected: u64 = (0..trials as u64).map(|t| trial_seed(13, t) % 11).sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn run_sweep_matches_per_point_loop_bitwise() {
        // The whole-sweep batch must reproduce the per-point scheduling
        // exactly — same seeds, same order — on the uneven workload.
        let seeds = [3u64, 99, 3, 0xDEAD]; // duplicate seeds are legal
        let trials = 37;
        let swept = run_sweep(&seeds, trials, |_, s| uneven(s));
        assert_eq!(swept.len(), seeds.len());
        for (i, &seed) in seeds.iter().enumerate() {
            assert_eq!(swept[i], run_trials(trials, seed, uneven), "point {i}");
        }
    }

    #[test]
    fn run_sweep_point_index_reaches_the_closure() {
        let seeds = [1u64, 2, 3];
        let swept = run_sweep_map(&seeds, 4, |point, seed| (point, seed));
        for (i, point_results) in swept.iter().enumerate() {
            for (t, &(point, seed)) in point_results.iter().enumerate() {
                assert_eq!(point, i);
                assert_eq!(seed, trial_seed(seeds[i], t as u64));
            }
        }
    }

    #[test]
    fn run_sweep_degenerate_shapes() {
        let empty: Vec<Vec<f64>> = run_sweep(&[], 10, |_, s| s as f64);
        assert!(empty.is_empty());
        let zero_trials = run_sweep(&[1, 2], 0, |_, s| s as f64);
        assert_eq!(zero_trials, vec![Vec::<f64>::new(), Vec::new()]);
        let single = run_sweep(&[7], 1, |_, s| s as f64);
        assert_eq!(single, vec![vec![trial_seed(7, 0) as f64]]);
    }

    #[test]
    fn protocol_trials_match_direct_one_shot_calls() {
        use tlb_core::resource_protocol::{run_resource_controlled, ResourceControlledConfig};
        let g = tlb_graphs::generators::torus2d(4, 4);
        let spec = WeightSpec::Uniform { m: 120 };
        let pcfg = ResourceControlledConfig::default();
        let point = ProtocolPoint {
            graph: g.clone(),
            weights: spec.clone(),
            placement: Placement::AllOnOne(0),
            protocol: MatrixProtocol::Core(ProtocolKind::Resource(pcfg.clone())),
            seed: 77,
        };
        let outcomes = run_protocol_trials(&point, 6);
        for (t, out) in outcomes.iter().enumerate() {
            let mut rng = SmallRng::seed_from_u64(trial_seed(77, t as u64));
            let tasks = spec.generate(&mut rng);
            let direct =
                run_resource_controlled(&g, &tasks, Placement::AllOnOne(0), &pcfg, &mut rng);
            assert_eq!(*out, direct, "trial {t} diverged from the direct call");
        }
    }

    #[test]
    fn protocol_sweep_matches_per_point_trials() {
        let g = tlb_graphs::generators::complete(10);
        let mk = |protocol: MatrixProtocol, seed: u64| ProtocolPoint {
            graph: g.clone(),
            weights: WeightSpec::Uniform { m: 80 },
            placement: Placement::AllOnOne(0),
            protocol,
            seed,
        };
        let points = vec![
            mk(MatrixProtocol::Core(ProtocolKind::User(Default::default())), 1),
            mk(MatrixProtocol::Baseline(BaselineConfig::default()), 2),
            mk(MatrixProtocol::Core(ProtocolKind::Mixed(Default::default())), 3),
        ];
        let swept = run_protocol_sweep(&points, 5);
        assert_eq!(swept.len(), 3);
        for (i, point) in points.iter().enumerate() {
            assert_eq!(swept[i], run_protocol_trials(point, 5), "point {i}");
            assert!(swept[i].iter().all(|o| o.balanced()));
        }
    }

    #[test]
    fn matrix_protocol_labels() {
        assert_eq!(
            MatrixProtocol::Core(ProtocolKind::Resource(Default::default())).label(),
            "resource"
        );
        assert_eq!(MatrixProtocol::Baseline(BaselineConfig::default()).label(), "greedy2");
    }

    #[test]
    fn map_variant_carries_structs() {
        #[derive(PartialEq, Debug)]
        struct Pair(u64, f64);
        let out = run_trials_map(10, 5, |s| Pair(s, s as f64 * 0.5));
        assert_eq!(out.len(), 10);
        assert_eq!(out[3], Pair(trial_seed(5, 3), trial_seed(5, 3) as f64 * 0.5));
    }
}
