//! # tlb-experiments
//!
//! Experiment harness regenerating every table and figure of *Threshold
//! Load Balancing with Weighted Tasks*, plus the ablations catalogued in
//! `DESIGN.md` (experiment ids T1, F1, F2, A1–A6).
//!
//! Structure:
//!
//! * [`harness`] — rayon-parallel trial fan-out with deterministic
//!   per-trial seeding (this is the hpc-parallel axis of the
//!   reproduction: trials are embarrassingly parallel and scale linearly
//!   with cores),
//! * [`stats`] — mean / standard deviation / 95% confidence intervals,
//! * [`output`] — aligned-text tables and CSV/JSON persistence under
//!   `results/`,
//! * [`figures`] — one module per paper artifact (Table 1, Figures 1–2)
//!   and per ablation, each exposing a `run(&Config) -> Table` function
//!   used by both the `--bin` drivers and the Criterion benches.
//!
//! Every experiment accepts a quality knob (trial count, sweep density) so
//! the same code path serves quick smoke runs and full paper-fidelity
//! regeneration.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baselines;
pub mod cli;
pub mod figures;
pub mod harness;
pub mod output;
pub mod stats;
