//! Minimal argument handling shared by the experiment binaries.
//!
//! Every driver understands:
//!
//! * `--quick` — run the reduced configuration (smoke-test scale),
//! * `--full` — run the paper-fidelity configuration (Section-7 scale,
//!   1000 trials per data point) on the sweep drivers that support it;
//!   drivers without a full configuration treat it as the default,
//! * `--trials N` — override the trial count,
//! * `--out DIR` — results directory (default `results/`),
//! * `--obs-out PATH` — on drivers wired for observability, also write
//!   a `tlb-obs` report (deterministic sweep counters + wall timings)
//!   to `PATH`; other drivers accept and ignore it.
//!
//! `--full` and `--quick` are mutually exclusive.

use std::path::PathBuf;

/// Parsed common options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Options {
    /// Use the reduced configuration.
    pub quick: bool,
    /// Use the paper-fidelity (Section-7 scale) configuration.
    pub full: bool,
    /// Trial-count override.
    pub trials: Option<usize>,
    /// Output directory for CSV/JSON artifacts.
    pub out_dir: PathBuf,
    /// Destination for an observability report, on wired drivers.
    pub obs_out: Option<PathBuf>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            quick: false,
            full: false,
            trials: None,
            out_dir: PathBuf::from("results"),
            obs_out: None,
        }
    }
}

impl Options {
    /// Parse from an iterator of arguments (without the program name).
    ///
    /// # Panics
    /// On unknown flags or malformed values — the binaries are internal
    /// tools, loud failure beats silent misconfiguration.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Options {
        let mut opts = Options::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => opts.quick = true,
                "--full" => opts.full = true,
                "--trials" => {
                    let v = it.next().expect("--trials needs a value");
                    opts.trials = Some(v.parse().expect("--trials value must be an integer"));
                }
                "--out" => {
                    opts.out_dir = PathBuf::from(it.next().expect("--out needs a value"));
                }
                "--obs-out" => {
                    opts.obs_out = Some(PathBuf::from(it.next().expect("--obs-out needs a value")));
                }
                "--help" | "-h" => {
                    eprintln!(
                        "usage: [--quick | --full] [--trials N] [--out DIR] [--obs-out PATH]"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown argument: {other}"),
            }
        }
        assert!(!(opts.quick && opts.full), "--quick and --full are mutually exclusive");
        opts
    }

    /// Parse from the process arguments.
    pub fn from_env() -> Options {
        Options::parse(std::env::args().skip(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Options {
        Options::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]);
        assert!(!o.quick);
        assert_eq!(o.trials, None);
        assert_eq!(o.out_dir, PathBuf::from("results"));
    }

    #[test]
    fn all_flags() {
        let o = parse(&["--quick", "--trials", "42", "--out", "/tmp/x", "--obs-out", "obs.json"]);
        assert!(o.quick);
        assert!(!o.full);
        assert_eq!(o.trials, Some(42));
        assert_eq!(o.out_dir, PathBuf::from("/tmp/x"));
        assert_eq!(o.obs_out, Some(PathBuf::from("obs.json")));
    }

    #[test]
    fn obs_out_defaults_to_none() {
        assert_eq!(parse(&[]).obs_out, None);
    }

    #[test]
    fn full_flag() {
        let o = parse(&["--full"]);
        assert!(o.full && !o.quick);
    }

    #[test]
    #[should_panic(expected = "mutually exclusive")]
    fn quick_and_full_conflict() {
        parse(&["--quick", "--full"]);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_flag_panics() {
        parse(&["--wat"]);
    }

    #[test]
    #[should_panic(expected = "needs a value")]
    fn missing_value_panics() {
        parse(&["--trials"]);
    }
}
