//! Result tables: aligned text rendering plus CSV/JSON persistence.
//!
//! Every figure/table driver produces a [`Table`]; the binaries print it
//! and persist it under `results/<experiment>.csv` (raw rows) and
//! `results/<experiment>.json` (with metadata), so EXPERIMENTS.md can
//! reference stable artifacts.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A rectangular result table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Experiment identifier (used as the output file stem).
    pub name: String,
    /// Free-form description (paper artifact, parameters).
    pub description: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each must have `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start an empty table.
    pub fn new(name: impl Into<String>, description: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            name: name.into(),
            description: description.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// If the cell count differs from the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch in table {}", self.name);
        self.rows.push(cells);
    }

    /// Render as an aligned text table (what the drivers print).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.name, self.description);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let _ =
            writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ =
            writeln!(out, "{}", self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Persist CSV + JSON under `dir`; returns the CSV path.
    pub fn save(&self, dir: impl AsRef<Path>) -> io::Result<PathBuf> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let csv_path = dir.join(format!("{}.csv", self.name));
        fs::write(&csv_path, self.to_csv())?;
        let json_path = dir.join(format!("{}.json", self.name));
        // Serialization failure becomes an I/O error for the caller to
        // handle, not a panic in the middle of a sweep's save pass.
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| io::Error::other(format!("table {} serializes: {e:?}", self.name)))?;
        fs::write(&json_path, json)?;
        Ok(csv_path)
    }

    /// Extract one column parsed as `f64` (non-numeric cells are skipped).
    pub fn column_f64(&self, header: &str) -> Vec<f64> {
        let idx = self
            .headers
            .iter()
            .position(|h| h == header)
            .unwrap_or_else(|| panic!("no column named {header} in table {}", self.name));
        self.rows.iter().filter_map(|r| r[idx].parse::<f64>().ok()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", "a demo table", &["x", "y"]);
        t.push_row(vec!["1".into(), "2.5".into()]);
        t.push_row(vec!["10".into(), "hello, world".into()]);
        t
    }

    #[test]
    fn render_contains_everything() {
        let r = sample().render();
        assert!(r.contains("demo"));
        assert!(r.contains('x'));
        assert!(r.contains("2.5"));
    }

    #[test]
    fn csv_escapes_commas() {
        let c = sample().to_csv();
        assert!(c.contains("\"hello, world\""));
        assert!(c.starts_with("x,y\n"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("t", "", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn column_extraction_skips_non_numeric() {
        let t = sample();
        assert_eq!(t.column_f64("x"), vec![1.0, 10.0]);
        assert_eq!(t.column_f64("y"), vec![2.5]);
    }

    #[test]
    fn save_roundtrip() {
        let dir = std::env::temp_dir().join("tlb_output_test");
        let t = sample();
        let csv = t.save(&dir).unwrap();
        let content = std::fs::read_to_string(csv).unwrap();
        assert!(content.contains("2.5"));
        let json = std::fs::read_to_string(dir.join("demo.json")).unwrap();
        let back: Table = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
