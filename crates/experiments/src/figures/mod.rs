//! One module per paper artifact / ablation; see `DESIGN.md` §3 for the
//! experiment index.
//!
//! | id | module | paper artifact |
//! |----|--------|----------------|
//! | T1 | [`table1`] | Table 1 (mixing & hitting times) |
//! | F1 | [`figure1`] | Figure 1 (balancing time vs `W`, two-point weights) |
//! | F2 | [`figure2`] | Figure 2 (normalized time vs `m`, single heavy task) |
//! | A1 | [`resource_scaling`] | Theorem 3 shape check |
//! | A2 | [`obs8`] | Observation 8 lower-bound family |
//! | A3 | [`alpha_sweep`] | α conservatism (§7 open question) |
//! | A4 | [`epsilon_sweep`] | tight vs above-average thresholds |
//! | A5 | [`diffusion_expt`] | footnote-1 average estimation |
//! | A6 | [`potential_decay`] | Lemma 10 drift vs measurement |
//! | A7 | [`mixed`] | Section-8 future work: mixed protocol |
//! | A8 | [`related_work`] | Section-3 related-work allocators |
//! | M1 | [`protocol_matrix`] | every protocol × graph × arrival scenario |
//! | R1 | [`adversary`] | robustness: adaptive adversaries, failure domains, admission control |

use tlb_core::protocol::EngineStats;
use tlb_obs::Registry;

/// Fold one sweep's merged [`EngineStats`] into an obs registry under
/// `prefix` — the deterministic engine-counter subtree every one-shot
/// sweep driver reports with the same shape (`<prefix>.walk_steps`,
/// `.fused_word_draws`, `.regular_fast_path_hits`, `.uniform_jump_draws`
/// counters plus the `.max_round_cohort` gauge), so CI can diff the
/// drivers' obs artifacts uniformly. Counters only — no RNG, no clock.
pub(crate) fn record_engine_stats(reg: &Registry, prefix: &str, stats: &EngineStats) {
    reg.add(&format!("{prefix}.walk_steps"), stats.walk_steps);
    reg.add(&format!("{prefix}.fused_word_draws"), stats.fused_word_draws);
    reg.add(&format!("{prefix}.regular_fast_path_hits"), stats.regular_fast_path_hits);
    reg.add(&format!("{prefix}.uniform_jump_draws"), stats.uniform_jump_draws);
    reg.set(&format!("{prefix}.max_round_cohort"), stats.max_round_cohort);
}

pub mod adversary;
pub mod alpha_sweep;
pub mod diffusion_expt;
pub mod epsilon_sweep;
pub mod figure1;
pub mod figure2;
pub mod mixed;
pub mod obs8;
pub mod potential_decay;
pub mod protocol_matrix;
pub mod related_work;
pub mod resource_scaling;
pub mod table1;
