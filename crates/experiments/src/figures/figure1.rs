//! **F1 — Figure 1**: user-controlled balancing time as a function of the
//! total weight `W`, for `k ∈ {1, 5, 10, 20, 50}` heavy tasks of weight
//! `w_max = 50` (the rest unit weight).
//!
//! Paper setting: `n = 1000`, `ε = 0.2`, `α = 1`, all tasks initially on
//! one resource, 1000 trials per point. Finding: the balancing time is
//! proportional to `log(m(W,k) + k)` and therefore nearly independent of
//! the number of heavy tasks `k`.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_core::placement::Placement;
use tlb_core::threshold::ThresholdPolicy;
use tlb_core::user_protocol::{run_user_controlled, UserControlledConfig};
use tlb_core::weights::WeightSpec;

use crate::harness;
use crate::output::Table;
use crate::stats::{linear_fit, Summary};

/// Configuration of the Figure-1 sweep.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of resources (paper: 1000).
    pub n: usize,
    /// Threshold slack (paper: 0.2).
    pub epsilon: f64,
    /// Migration damping (paper simulations: 1.0).
    pub alpha: f64,
    /// Heavy-task weight (paper: 50).
    pub w_max: f64,
    /// Heavy-task counts to sweep (paper: 1, 5, 10, 20, 50).
    pub ks: Vec<usize>,
    /// Total weights to sweep (paper: 2000..=10000).
    pub w_totals: Vec<f64>,
    /// Trials per point (paper: 1000).
    pub trials: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n: 1000,
            epsilon: 0.2,
            alpha: 1.0,
            w_max: 50.0,
            ks: vec![1, 5, 10, 20, 50],
            w_totals: (2..=10).map(|w| (w * 1000) as f64).collect(),
            trials: 1000,
            seed: 0xF161,
        }
    }
}

impl Config {
    /// Reduced sweep for smoke tests and benches.
    pub fn quick() -> Self {
        Config {
            n: 200,
            ks: vec![1, 10, 50],
            w_totals: vec![2000.0, 6000.0, 10000.0],
            trials: 30,
            ..Default::default()
        }
    }
}

/// Mean balancing time for one `(W, k)` point.
pub fn point(cfg: &Config, w_total: f64, k: usize) -> Summary {
    let spec = WeightSpec::TwoPoint { total: w_total, k, heavy: cfg.w_max };
    let proto = UserControlledConfig {
        threshold: ThresholdPolicy::AboveAverage { epsilon: cfg.epsilon },
        alpha: cfg.alpha,
        ..Default::default()
    };
    let n = cfg.n;
    let samples =
        harness::run_trials(cfg.trials, cfg.seed ^ (w_total as u64) ^ ((k as u64) << 32), |s| {
            let mut rng = SmallRng::seed_from_u64(s);
            let tasks = spec.generate(&mut rng);
            run_user_controlled(n, &tasks, Placement::AllOnOne(0), &proto, &mut rng).rounds as f64
        });
    Summary::of(&samples)
}

/// Run the sweep. Columns: `W, k, m, rounds_mean, rounds_ci95,
/// rounds_over_log_m` — the last reproducing the paper's observation that
/// the curves collapse under the `log(m+k)` normalization.
pub fn run(cfg: &Config) -> Table {
    let mut table = Table::new(
        "figure1",
        format!(
            "Figure 1: balancing time vs W (user-controlled, n={}, eps={}, alpha={}, wmax={}, {} trials)",
            cfg.n, cfg.epsilon, cfg.alpha, cfg.w_max, cfg.trials
        ),
        &["W", "k", "m", "rounds_mean", "rounds_ci95", "rounds_over_log_m"],
    );
    for &k in &cfg.ks {
        for &w_total in &cfg.w_totals {
            // k heavy tasks cannot outweigh the requested total (e.g. the
            // paper's k = 50 curve cannot start at W = 2000 < 50·50).
            if (k as f64) * cfg.w_max > w_total {
                continue;
            }
            let m = WeightSpec::TwoPoint { total: w_total, k, heavy: cfg.w_max }.num_tasks();
            let s = point(cfg, w_total, k);
            table.push_row(vec![
                format!("{w_total:.0}"),
                k.to_string(),
                m.to_string(),
                format!("{:.2}", s.mean),
                format!("{:.2}", s.ci95),
                format!("{:.3}", s.mean / (m as f64).ln()),
            ]);
        }
    }
    table
}

/// Shape check used by EXPERIMENTS.md: fit `rounds ~ a + b·ln m` per `k`
/// and report `(k, slope b, r²)`.
pub fn log_fit_per_k(cfg: &Config, table: &Table) -> Vec<(usize, f64, f64)> {
    let mut out = Vec::new();
    for &k in &cfg.ks {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for row in &table.rows {
            if row[1] == k.to_string() {
                let m: f64 = row[2].parse().expect("m numeric");
                let rounds: f64 = row[3].parse().expect("rounds numeric");
                xs.push(m.ln());
                ys.push(rounds);
            }
        }
        if xs.len() >= 2 {
            let (_, b, r2) = linear_fit(&xs, &ys);
            out.push((k, b, r2));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Config {
        Config {
            n: 50,
            ks: vec![1, 5],
            w_totals: vec![500.0, 1500.0],
            trials: 10,
            ..Config::default()
        }
    }

    #[test]
    fn sweep_produces_all_points() {
        let cfg = tiny();
        let t = run(&cfg);
        assert_eq!(t.rows.len(), 4);
        for r in t.column_f64("rounds_mean") {
            assert!(r >= 1.0, "hotspot start must need at least one round, got {r}");
        }
    }

    #[test]
    fn rounds_grow_with_total_weight() {
        let cfg = tiny();
        let small = point(&cfg, 500.0, 1);
        let large = point(&cfg, 1500.0, 1);
        assert!(
            large.mean >= small.mean * 0.8,
            "larger W should not balance dramatically faster: {} vs {}",
            small.mean,
            large.mean
        );
    }

    #[test]
    fn log_fit_reports_each_k() {
        let cfg = tiny();
        let t = run(&cfg);
        let fits = log_fit_per_k(&cfg, &t);
        assert_eq!(fits.len(), 2);
        for (_, slope, _) in fits {
            assert!(slope.is_finite());
        }
    }
}
