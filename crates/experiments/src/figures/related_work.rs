//! **A8 — related-work baselines** (paper Section 3): the cited
//! allocators on the same weighted workloads as the threshold protocols.
//!
//! Two comparisons:
//!
//! 1. **Gap vs m** — one-choice, two-choice (Talwar–Wieder \[9\]),
//!    `(1+β)` (Peres et al. \[11\]), sequential threshold-retry
//!    (Berenbrink et al. \[5\]) and 4-round parallel threshold (Adler et
//!    al. \[4\]): the classic result that multi-choice/threshold schemes
//!    have m-independent gaps while one-choice grows as `√m`.
//! 2. **Cost accounting** — random choices consumed per scheme, since the
//!    threshold protocols' advantage is reaching a *guaranteed* threshold
//!    with decentralized decisions rather than fewer samples.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_baselines::{greedy, one_plus_beta, parallel_threshold, sequential_threshold};
use tlb_core::weights::WeightSpec;

use crate::harness;
use crate::output::Table;
use crate::stats::Summary;

/// Configuration for the related-work comparison.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of bins.
    pub n: usize,
    /// Task counts to sweep (gap-vs-m axis).
    pub ms: Vec<usize>,
    /// Heavy-tail cap for the weighted workload.
    pub weight_cap: f64,
    /// Trials per point.
    pub trials: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n: 500,
            ms: vec![2_500, 10_000, 40_000],
            weight_cap: 16.0,
            trials: 100,
            seed: 0xA8,
        }
    }
}

impl Config {
    /// Reduced configuration for smoke tests and benches.
    pub fn quick() -> Self {
        Config { n: 100, ms: vec![1_000, 8_000], trials: 15, ..Default::default() }
    }
}

/// The schemes compared, by label.
pub const SCHEMES: [&str; 5] =
    ["one-choice", "two-choice", "(1+beta=0.5)", "seq-threshold", "par-threshold-4r"];

fn run_scheme(scheme: &str, spec: &WeightSpec, n: usize, seed: u64) -> (f64, u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let tasks = spec.generate(&mut rng);
    match scheme {
        "one-choice" => {
            let a = greedy::allocate(&tasks, n, 1, &mut rng);
            (a.gap(), a.choices)
        }
        "two-choice" => {
            let a = greedy::allocate(&tasks, n, 2, &mut rng);
            (a.gap(), a.choices)
        }
        "(1+beta=0.5)" => {
            let a = one_plus_beta::allocate(&tasks, n, 0.5, &mut rng);
            (a.gap(), a.choices)
        }
        "seq-threshold" => {
            let o = sequential_threshold::allocate(&tasks, n, 1.0, 50, &mut rng);
            (o.allocation().gap(), o.choices)
        }
        "par-threshold-4r" => {
            let o = parallel_threshold::allocate_uniform_threshold(&tasks, n, 4, 1.0, &mut rng);
            (o.allocation().gap(), o.choices)
        }
        other => panic!("unknown scheme {other}"),
    }
}

/// Run the sweep. Columns: scheme, m, gap_mean, gap_ci95,
/// choices_per_ball.
pub fn run(cfg: &Config) -> Table {
    let mut table = Table::new(
        "related_work",
        format!(
            "A8/Section 3: related-work allocators on weighted workloads (n={}, Pareto cap={}, {} trials)",
            cfg.n, cfg.weight_cap, cfg.trials
        ),
        &["scheme", "m", "gap_mean", "gap_ci95", "choices_per_ball"],
    );
    for scheme in SCHEMES {
        for &m in &cfg.ms {
            let spec = WeightSpec::ParetoTruncated { m, alpha: 1.5, cap: cfg.weight_cap };
            let results = harness::run_trials_map(
                cfg.trials,
                cfg.seed ^ ((m as u64) << 8) ^ scheme.len() as u64,
                |s| run_scheme(scheme, &spec, cfg.n, s),
            );
            let gaps: Vec<f64> = results.iter().map(|r| r.0).collect();
            let choices: f64 =
                results.iter().map(|r| r.1 as f64).sum::<f64>() / results.len() as f64;
            let g = Summary::of(&gaps);
            table.push_row(vec![
                scheme.to_string(),
                m.to_string(),
                format!("{:.3}", g.mean),
                format!("{:.3}", g.ci95),
                format!("{:.2}", choices / m as f64),
            ]);
        }
    }
    table
}

/// Shape check: per scheme, the ratio gap(m_max)/gap(m_min) — one-choice
/// must grow, the multi-choice/threshold schemes must not (by much).
pub fn growth_ratios(cfg: &Config, table: &Table) -> Vec<(String, f64)> {
    let (m_min, m_max) =
        (*cfg.ms.iter().min().expect("non-empty ms"), *cfg.ms.iter().max().expect("non-empty ms"));
    SCHEMES
        .iter()
        .map(|&scheme| {
            let at = |m: usize| -> f64 {
                table
                    .rows
                    .iter()
                    .find(|r| r[0] == scheme && r[1] == m.to_string())
                    .map(|r| r[2].parse().expect("gap numeric"))
                    .expect("row present")
            };
            (scheme.to_string(), at(m_max) / at(m_min).max(1e-9))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_schemes_and_sizes() {
        let cfg = Config::quick();
        let t = run(&cfg);
        assert_eq!(t.rows.len(), SCHEMES.len() * cfg.ms.len());
        for g in t.column_f64("gap_mean") {
            assert!(g >= 0.0 && g.is_finite());
        }
    }

    #[test]
    fn one_choice_grows_multi_choice_does_not() {
        let cfg = Config { trials: 20, ..Config::quick() };
        let t = run(&cfg);
        let ratios = growth_ratios(&cfg, &t);
        let get = |s: &str| ratios.iter().find(|(name, _)| name == s).unwrap().1;
        let one = get("one-choice");
        let two = get("two-choice");
        assert!(one > 1.5, "one-choice gap must grow with m: ratio {one}");
        assert!(two < one, "two-choice growth {two} must be below one-choice {one}");
        assert!(get("seq-threshold") < one, "threshold-retry must not track one-choice");
    }
}
