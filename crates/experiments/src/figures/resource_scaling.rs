//! **A1 — Theorem 3 shape check**: resource-controlled balancing time vs
//! `τ(G)·log m` across graph families.
//!
//! Theorem 3 predicts `O(τ(G)·log m)` rounds w.h.p. for above-average
//! thresholds, *independent of the task weights*. This experiment measures
//! the balancing time on every Table-1 family and reports the ratio
//! `rounds / (τ·ln m)`, which should stay bounded (near-constant) across
//! families whose mixing times differ by orders of magnitude, for both
//! uniform and weighted workloads.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_core::placement::Placement;
use tlb_core::protocol::EngineStats;
use tlb_core::resource_protocol::{run_resource_controlled_with_stats, ResourceControlledConfig};
use tlb_core::threshold::ThresholdPolicy;
use tlb_core::weights::WeightSpec;
use tlb_graphs::generators::Family;
use tlb_obs::{ObsReport, Registry};

use crate::figures::table1::build_family;
use crate::harness;
use crate::output::Table;
use crate::stats::Summary;

/// Configuration for the Theorem-3 scaling experiment.
#[derive(Debug, Clone)]
pub struct Config {
    /// Approximate graph size per family.
    pub size: usize,
    /// Tasks per resource (`m = tasks_per_node · n`).
    pub tasks_per_node: usize,
    /// Threshold slack.
    pub epsilon: f64,
    /// Trials per (family, workload) point.
    pub trials: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config { size: 256, tasks_per_node: 10, epsilon: 0.2, trials: 100, seed: 0xA1 }
    }
}

impl Config {
    /// Reduced configuration for smoke tests and benches.
    pub fn quick() -> Self {
        Config { size: 64, trials: 15, ..Default::default() }
    }

    /// Paper-fidelity configuration: the Section-7 trial count (every
    /// data point averaged over 1000 independent trials).
    pub fn full() -> Self {
        Config { trials: 1000, ..Default::default() }
    }
}

/// A named workload constructor.
type WorkloadCtor = fn(usize) -> WeightSpec;

/// Workload kinds compared (Theorem 3 says weights should not matter).
const WORKLOADS: [(&str, WorkloadCtor); 2] = [
    ("uniform", |m| WeightSpec::Uniform { m }),
    ("pareto", |m| WeightSpec::ParetoTruncated { m, alpha: 1.5, cap: 32.0 }),
];

/// One prepared family: the graph plus the walk-theory quantities the
/// report column needs (computed once, shared by both workload points).
struct FamilyPoint {
    family: Family,
    g: tlb_graphs::Graph,
    n: usize,
    m: usize,
    tau: f64,
    proto: ResourceControlledConfig,
}

/// Run the sweep. Columns: family, n, m, workload, tau, rounds_mean,
/// rounds_ci95, rounds_over_tau_logm.
///
/// All `(family × workload)` points run as **one** pool batch through
/// [`harness::run_sweep`] — the sweep's per-point costs differ by orders
/// of magnitude (cycle vs expander mixing times), which is exactly the
/// straggler shape whole-sweep scheduling wins on. Seeds per point match
/// the old per-point loop, so results are bit-identical to it.
pub fn run(cfg: &Config) -> Table {
    run_obs(cfg).0
}

/// [`run`], also returning the sweep's observability report (the shape
/// `protocol_matrix` reports): deterministic per-point totals plus the
/// engine's [`EngineStats`] merged across every trial under the
/// `scaling.` counter prefix — this is the driver where the kernel
/// counters (walk steps, fused lazy draws, regular fast-path hits) carry
/// real signal, since every Table-1 family walks — the sweep wall time,
/// and the rayon pool deltas.
pub fn run_obs(cfg: &Config) -> (Table, ObsReport) {
    let reg = Registry::new();
    let pool_base = rayon::pool_stats();
    let t_sweep = std::time::Instant::now();
    let mut table = Table::new(
        "resource_scaling",
        format!(
            "A1/Theorem 3: resource-controlled rounds vs tau(G) log m (size~{}, {} trials)",
            cfg.size, cfg.trials
        ),
        &["family", "n", "m", "workload", "tau_lemma2", "rounds_mean", "rounds_ci95", "ratio"],
    );
    // Prepare the per-family substrate up front (graph build + spectral
    // gap are per-family, not per-trial).
    let families: Vec<FamilyPoint> = Family::ALL
        .iter()
        .map(|&family| {
            let (g, kind) = build_family(family, cfg.size, cfg.seed);
            let n = g.num_nodes();
            let m = n * cfg.tasks_per_node;
            let p = tlb_walks::TransitionMatrix::build(&g, kind);
            let gap = tlb_walks::spectral::spectral_gap_power(&p, &g, 1e-10, 100_000);
            let tau = tlb_walks::mixing::lemma2_mixing_time(n, &gap).unwrap_or(u64::MAX) as f64;
            let proto = ResourceControlledConfig {
                threshold: ThresholdPolicy::AboveAverage { epsilon: cfg.epsilon },
                walk: kind,
                ..Default::default()
            };
            FamilyPoint { family, g, n, m, tau, proto }
        })
        .collect();
    // Flatten to (family × workload) sweep points. The seed depends on
    // the family only (as the per-point loop always had it).
    let points: Vec<(usize, &str, WeightSpec)> = families
        .iter()
        .enumerate()
        .flat_map(|(fi, fp)| WORKLOADS.iter().map(move |&(wname, wf)| (fi, wname, wf(fp.m))))
        .collect();
    let seeds: Vec<u64> = points
        .iter()
        .map(|&(fi, _, _)| cfg.seed ^ (families[fi].family as u64) << 8)
        .collect();
    let results = harness::run_sweep_map(&seeds, cfg.trials, |i, s| {
        let (fi, _, ref spec) = points[i];
        let fp = &families[fi];
        let mut rng = SmallRng::seed_from_u64(s);
        let tasks = spec.generate(&mut rng);
        let (out, stats) = run_resource_controlled_with_stats(
            &fp.g,
            &tasks,
            Placement::AllOnOne(0),
            &fp.proto,
            &mut rng,
        );
        (out.rounds as f64, stats)
    });
    let mut merged = EngineStats::default();
    for (&(fi, wname, _), samples) in points.iter().zip(&results) {
        let fp = &families[fi];
        reg.add("scaling.points", 1);
        reg.add("scaling.trials", samples.len() as u64);
        reg.add("scaling.rounds", samples.iter().map(|(r, _)| *r as u64).sum());
        for (_, stats) in samples {
            merged.merge(stats);
        }
        let rounds: Vec<f64> = samples.iter().map(|(r, _)| *r).collect();
        let s = Summary::of(&rounds);
        let denom = fp.tau * (fp.m as f64).ln();
        table.push_row(vec![
            fp.family.name().to_string(),
            fp.n.to_string(),
            fp.m.to_string(),
            wname.to_string(),
            format!("{:.1}", fp.tau),
            format!("{:.2}", s.mean),
            format!("{:.2}", s.ci95),
            format!("{:.5}", s.mean / denom),
        ]);
    }
    super::record_engine_stats(&reg, "scaling", &merged);
    reg.record_ns("scaling.sweep_ns", t_sweep.elapsed().as_nanos() as u64);
    let pool = rayon::pool_stats();
    reg.set_exec("pool.threads", pool.threads as u64);
    reg.set_exec("pool.batches", pool.batches.saturating_sub(pool_base.batches));
    reg.set_exec(
        "pool.chunks_claimed",
        pool.chunks_claimed.saturating_sub(pool_base.chunks_claimed),
    );
    (table, reg.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_covers_all_families_and_workloads() {
        let cfg = Config::quick();
        let t = run(&cfg);
        assert_eq!(t.rows.len(), Family::ALL.len() * WORKLOADS.len());
        for ratio in t.column_f64("ratio") {
            assert!(ratio > 0.0 && ratio.is_finite());
        }
    }

    #[test]
    fn ratios_are_bounded_across_families() {
        // The collapse claim: rounds/(tau ln m) varies far less across
        // families than tau itself does. Allow a generous factor.
        let cfg = Config::quick();
        let t = run(&cfg);
        let ratios = t.column_f64("ratio");
        let max = ratios.iter().fold(f64::MIN, |a, &b| a.max(b));
        let min = ratios.iter().fold(f64::MAX, |a, &b| a.min(b));
        let taus = t.column_f64("tau_lemma2");
        let tau_spread = taus.iter().fold(f64::MIN, |a, &b| a.max(b))
            / taus.iter().fold(f64::MAX, |a, &b| a.min(b));
        assert!(
            max / min < tau_spread,
            "normalized spread {:.2} should be smaller than raw tau spread {:.2}",
            max / min,
            tau_spread
        );
    }

    #[test]
    fn obs_counters_aggregate_the_sweep_deterministically() {
        let cfg = Config { trials: 3, ..Config::quick() };
        let (table, obs) = run_obs(&cfg);
        assert_eq!(obs.counters["scaling.points"], table.rows.len() as u64);
        assert_eq!(obs.counters["scaling.trials"], (table.rows.len() * cfg.trials) as u64);
        assert!(obs.counters["scaling.rounds"] > 0);
        assert!(obs.counters["scaling.walk_steps"] > 0);
        assert!(obs.timings.contains_key("scaling.sweep_ns"));
        // The deterministic subtree is byte-stable run to run; the table
        // itself must be unchanged by the instrumentation.
        let (again_table, again) = run_obs(&cfg);
        assert_eq!(again_table, table);
        assert_eq!(again.counters_json(), obs.counters_json());
    }
}
