//! **A1 — Theorem 3 shape check**: resource-controlled balancing time vs
//! `τ(G)·log m` across graph families.
//!
//! Theorem 3 predicts `O(τ(G)·log m)` rounds w.h.p. for above-average
//! thresholds, *independent of the task weights*. This experiment measures
//! the balancing time on every Table-1 family and reports the ratio
//! `rounds / (τ·ln m)`, which should stay bounded (near-constant) across
//! families whose mixing times differ by orders of magnitude, for both
//! uniform and weighted workloads.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_core::placement::Placement;
use tlb_core::resource_protocol::{run_resource_controlled, ResourceControlledConfig};
use tlb_core::threshold::ThresholdPolicy;
use tlb_core::weights::WeightSpec;
use tlb_graphs::generators::Family;

use crate::figures::table1::build_family;
use crate::harness;
use crate::output::Table;
use crate::stats::Summary;

/// Configuration for the Theorem-3 scaling experiment.
#[derive(Debug, Clone)]
pub struct Config {
    /// Approximate graph size per family.
    pub size: usize,
    /// Tasks per resource (`m = tasks_per_node · n`).
    pub tasks_per_node: usize,
    /// Threshold slack.
    pub epsilon: f64,
    /// Trials per (family, workload) point.
    pub trials: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config { size: 256, tasks_per_node: 10, epsilon: 0.2, trials: 100, seed: 0xA1 }
    }
}

impl Config {
    /// Reduced configuration for smoke tests and benches.
    pub fn quick() -> Self {
        Config { size: 64, trials: 15, ..Default::default() }
    }
}

/// A named workload constructor.
type WorkloadCtor = fn(usize) -> WeightSpec;

/// Workload kinds compared (Theorem 3 says weights should not matter).
const WORKLOADS: [(&str, WorkloadCtor); 2] = [
    ("uniform", |m| WeightSpec::Uniform { m }),
    ("pareto", |m| WeightSpec::ParetoTruncated { m, alpha: 1.5, cap: 32.0 }),
];

/// Run the sweep. Columns: family, n, m, workload, tau, rounds_mean,
/// rounds_ci95, rounds_over_tau_logm.
pub fn run(cfg: &Config) -> Table {
    let mut table = Table::new(
        "resource_scaling",
        format!(
            "A1/Theorem 3: resource-controlled rounds vs tau(G) log m (size~{}, {} trials)",
            cfg.size, cfg.trials
        ),
        &["family", "n", "m", "workload", "tau_lemma2", "rounds_mean", "rounds_ci95", "ratio"],
    );
    for family in Family::ALL {
        let (g, kind) = build_family(family, cfg.size, cfg.seed);
        let n = g.num_nodes();
        let m = n * cfg.tasks_per_node;
        let p = tlb_walks::TransitionMatrix::build(&g, kind);
        let gap = tlb_walks::spectral::spectral_gap_power(&p, &g, 1e-10, 100_000);
        let tau = tlb_walks::mixing::lemma2_mixing_time(n, &gap).unwrap_or(u64::MAX) as f64;
        for (wname, wf) in WORKLOADS {
            let spec = wf(m);
            let proto = ResourceControlledConfig {
                threshold: ThresholdPolicy::AboveAverage { epsilon: cfg.epsilon },
                walk: kind,
                ..Default::default()
            };
            let samples = harness::run_trials(cfg.trials, cfg.seed ^ (family as u64) << 8, |s| {
                let mut rng = SmallRng::seed_from_u64(s);
                let tasks = spec.generate(&mut rng);
                run_resource_controlled(&g, &tasks, Placement::AllOnOne(0), &proto, &mut rng).rounds
                    as f64
            });
            let s = Summary::of(&samples);
            let denom = tau * (m as f64).ln();
            table.push_row(vec![
                family.name().to_string(),
                n.to_string(),
                m.to_string(),
                wname.to_string(),
                format!("{tau:.1}"),
                format!("{:.2}", s.mean),
                format!("{:.2}", s.ci95),
                format!("{:.5}", s.mean / denom),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_covers_all_families_and_workloads() {
        let cfg = Config::quick();
        let t = run(&cfg);
        assert_eq!(t.rows.len(), Family::ALL.len() * WORKLOADS.len());
        for ratio in t.column_f64("ratio") {
            assert!(ratio > 0.0 && ratio.is_finite());
        }
    }

    #[test]
    fn ratios_are_bounded_across_families() {
        // The collapse claim: rounds/(tau ln m) varies far less across
        // families than tau itself does. Allow a generous factor.
        let cfg = Config::quick();
        let t = run(&cfg);
        let ratios = t.column_f64("ratio");
        let max = ratios.iter().fold(f64::MIN, |a, &b| a.max(b));
        let min = ratios.iter().fold(f64::MAX, |a, &b| a.min(b));
        let taus = t.column_f64("tau_lemma2");
        let tau_spread = taus.iter().fold(f64::MIN, |a, &b| a.max(b))
            / taus.iter().fold(f64::MAX, |a, &b| a.min(b));
        assert!(
            max / min < tau_spread,
            "normalized spread {:.2} should be smaller than raw tau spread {:.2}",
            max / min,
            tau_spread
        );
    }
}
