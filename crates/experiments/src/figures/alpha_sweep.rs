//! **A3 — α sweep**: how conservative is the analysis's
//! `α = ε/(120(1+ε))`?
//!
//! Section 7 of the paper runs `α = 1` and remarks that the small `α`
//! required by Lemma 10 "is quite conservative", leaving tightness for
//! `α = 1` as an open question. This experiment sweeps `α` from the
//! analysis value up to 1 and reports mean balancing time and the product
//! `α · rounds`, which Theorem 11 predicts to be roughly constant
//! (`E[T] ∝ 1/α`).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_core::drift::analysis_alpha;
use tlb_core::placement::Placement;
use tlb_core::protocol::EngineStats;
use tlb_core::threshold::ThresholdPolicy;
use tlb_core::user_protocol::{run_user_controlled_with_stats, UserControlledConfig};
use tlb_core::weights::WeightSpec;
use tlb_obs::{ObsReport, Registry};

use crate::harness;
use crate::output::Table;
use crate::stats::Summary;

/// Configuration for the α sweep.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of resources.
    pub n: usize,
    /// Number of tasks.
    pub m: usize,
    /// Heavy-task weight (single heavy task, Figure-2 style workload).
    pub w_max: f64,
    /// Threshold slack.
    pub epsilon: f64,
    /// α values; if empty, a geometric ladder from the analysis α to 1.
    pub alphas: Vec<f64>,
    /// Trials per α.
    pub trials: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n: 500,
            m: 2000,
            w_max: 16.0,
            epsilon: 0.2,
            alphas: vec![],
            trials: 200,
            seed: 0xA3,
        }
    }
}

impl Config {
    /// Reduced configuration for smoke tests and benches.
    pub fn quick() -> Self {
        Config { n: 100, m: 500, trials: 20, ..Default::default() }
    }

    /// Paper-fidelity configuration: the Section-7 trial count (every
    /// data point averaged over 1000 independent trials).
    pub fn full() -> Self {
        Config { trials: 1000, ..Default::default() }
    }

    /// The α ladder actually swept.
    pub fn alpha_ladder(&self) -> Vec<f64> {
        if !self.alphas.is_empty() {
            return self.alphas.clone();
        }
        let lo = analysis_alpha(self.epsilon);
        // Geometric ladder lo … 1.0 in 6 steps.
        let steps = 6;
        (0..=steps).map(|i| lo * (1.0 / lo).powf(i as f64 / steps as f64)).collect()
    }
}

/// Run the sweep. Columns: alpha, rounds_mean, rounds_ci95, alpha_x_rounds.
///
/// The whole α ladder runs as **one** pool batch through
/// [`harness::run_sweep`]; per-point seeds match the old per-point loop,
/// so results are bit-identical to it at any thread count. The ladder is
/// maximally uneven work — small α balances an order of magnitude slower
/// than α = 1 — exactly the shape the flattened batch exists for.
pub fn run(cfg: &Config) -> Table {
    run_obs(cfg).0
}

/// [`run`], also returning the sweep's observability report (the shape
/// `protocol_matrix` reports): deterministic per-point totals plus the
/// engine's [`EngineStats`] merged across every trial under the `alpha.`
/// counter prefix, the sweep wall time, and the rayon pool deltas.
pub fn run_obs(cfg: &Config) -> (Table, ObsReport) {
    let reg = Registry::new();
    let pool_base = rayon::pool_stats();
    let t_sweep = std::time::Instant::now();
    let mut table = Table::new(
        "alpha_sweep",
        format!(
            "A3: balancing time vs alpha (user-controlled, n={}, m={}, wmax={}, eps={}, {} trials)",
            cfg.n, cfg.m, cfg.w_max, cfg.epsilon, cfg.trials
        ),
        &["alpha", "rounds_mean", "rounds_ci95", "alpha_x_rounds"],
    );
    let spec = WeightSpec::figure2(cfg.m, cfg.w_max);
    let ladder = cfg.alpha_ladder();
    let protos: Vec<UserControlledConfig> = ladder
        .iter()
        .map(|&alpha| UserControlledConfig {
            threshold: ThresholdPolicy::AboveAverage { epsilon: cfg.epsilon },
            alpha,
            ..Default::default()
        })
        .collect();
    let seeds: Vec<u64> = ladder.iter().map(|&alpha| cfg.seed ^ (alpha * 1e6) as u64).collect();
    let n = cfg.n;
    let results = harness::run_sweep_map(&seeds, cfg.trials, |i, s| {
        let mut rng = SmallRng::seed_from_u64(s);
        let tasks = spec.generate(&mut rng);
        let (out, stats) =
            run_user_controlled_with_stats(n, &tasks, Placement::AllOnOne(0), &protos[i], &mut rng);
        (out.rounds as f64, stats)
    });
    let mut merged = EngineStats::default();
    for (alpha, samples) in ladder.iter().zip(&results) {
        reg.add("alpha.points", 1);
        reg.add("alpha.trials", samples.len() as u64);
        reg.add("alpha.rounds", samples.iter().map(|(r, _)| *r as u64).sum());
        for (_, stats) in samples {
            merged.merge(stats);
        }
        let rounds: Vec<f64> = samples.iter().map(|(r, _)| *r).collect();
        let s = Summary::of(&rounds);
        table.push_row(vec![
            format!("{alpha:.6}"),
            format!("{:.2}", s.mean),
            format!("{:.2}", s.ci95),
            format!("{:.2}", alpha * s.mean),
        ]);
    }
    super::record_engine_stats(&reg, "alpha", &merged);
    reg.record_ns("alpha.sweep_ns", t_sweep.elapsed().as_nanos() as u64);
    let pool = rayon::pool_stats();
    reg.set_exec("pool.threads", pool.threads as u64);
    reg.set_exec("pool.batches", pool.batches.saturating_sub(pool_base.batches));
    reg.set_exec(
        "pool.chunks_claimed",
        pool.chunks_claimed.saturating_sub(pool_base.chunks_claimed),
    );
    (table, reg.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_spans_analysis_to_one() {
        let cfg = Config::default();
        let ladder = cfg.alpha_ladder();
        assert!((ladder[0] - analysis_alpha(0.2)).abs() < 1e-12);
        assert!((ladder.last().unwrap() - 1.0).abs() < 1e-9);
        assert!(ladder.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn rounds_decrease_with_alpha() {
        let cfg = Config { alphas: vec![0.05, 1.0], trials: 15, n: 60, m: 300, ..Config::quick() };
        let t = run(&cfg);
        let rounds = t.column_f64("rounds_mean");
        assert_eq!(rounds.len(), 2);
        assert!(
            rounds[0] > rounds[1],
            "alpha=0.05 ({}) should be slower than alpha=1 ({})",
            rounds[0],
            rounds[1]
        );
    }

    #[test]
    fn alpha_times_rounds_is_stable_within_factor() {
        // E[T] ∝ 1/α means α·E[T] varies slowly; allow a loose factor
        // since small-α runs have extra constant overhead.
        let cfg =
            Config { alphas: vec![0.2, 0.5, 1.0], trials: 25, n: 60, m: 300, ..Config::quick() };
        let t = run(&cfg);
        let prods = t.column_f64("alpha_x_rounds");
        let max = prods.iter().fold(f64::MIN, |a, &b| a.max(b));
        let min = prods.iter().fold(f64::MAX, |a, &b| a.min(b));
        assert!(max / min < 4.0, "alpha*rounds spread too wide: {prods:?}");
    }

    #[test]
    fn obs_counters_aggregate_the_sweep_deterministically() {
        let cfg = Config { trials: 3, ..Config::quick() };
        let (table, obs) = run_obs(&cfg);
        assert_eq!(obs.counters["alpha.points"], table.rows.len() as u64);
        assert_eq!(obs.counters["alpha.trials"], (table.rows.len() * cfg.trials) as u64);
        assert!(obs.counters["alpha.rounds"] > 0);
        assert!(obs.counters["alpha.uniform_jump_draws"] > 0);
        assert!(obs.timings.contains_key("alpha.sweep_ns"));
        // The deterministic subtree is byte-stable run to run; the table
        // itself must be unchanged by the instrumentation.
        let (again_table, again) = run_obs(&cfg);
        assert_eq!(again_table, table);
        assert_eq!(again.counters_json(), obs.counters_json());
    }
}
