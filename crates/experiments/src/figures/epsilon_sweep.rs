//! **A4 — ε sweep**: above-average vs tight thresholds for the
//! user-controlled protocol (Theorem 11 vs Theorem 12).
//!
//! As `ε → 0` the threshold approaches the tight `W/n + w_max` and the
//! Theorem-11 bound degrades to Theorem 12's `n`-dependent one. The sweep
//! measures the blow-up empirically: mean balancing time per ε, including
//! the exact tight threshold as the `ε = 0` endpoint.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_core::placement::Placement;
use tlb_core::threshold::ThresholdPolicy;
use tlb_core::user_protocol::{run_user_controlled, UserControlledConfig};
use tlb_core::weights::WeightSpec;

use crate::harness;
use crate::output::Table;
use crate::stats::Summary;

/// Configuration for the ε sweep.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of resources.
    pub n: usize,
    /// Number of tasks.
    pub m: usize,
    /// Heavy-task weights to sweep (single heavy task; 1.0 = uniform).
    /// The ε effect only shows when the *endgame* (finding the last slots)
    /// dominates — i.e. for uniform tasks near saturation; with a heavy
    /// task the hotspot drain dominates and all thresholds cost the same.
    /// Sweeping both exposes exactly that contrast.
    pub w_maxes: Vec<f64>,
    /// ε values; 0 means the tight threshold.
    pub epsilons: Vec<f64>,
    /// Migration damping.
    pub alpha: f64,
    /// Trials per ε.
    pub trials: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        // Keep W/n well above w_max so the ε term of the threshold is the
        // binding constraint (with w_max ≫ W/n all policies coincide up to
        // the +w_max slack and the sweep shows nothing).
        Config {
            n: 100,
            m: 5000,
            w_maxes: vec![1.0, 16.0],
            epsilons: vec![0.0, 0.05, 0.1, 0.2, 0.5, 1.0],
            alpha: 1.0,
            trials: 200,
            seed: 0xA4,
        }
    }
}

impl Config {
    /// Reduced configuration for smoke tests and benches.
    pub fn quick() -> Self {
        Config {
            n: 50,
            m: 1500,
            w_maxes: vec![1.0],
            epsilons: vec![0.0, 0.2, 1.0],
            trials: 20,
            ..Default::default()
        }
    }

    /// Paper-fidelity configuration: the Section-7 trial count (every
    /// data point averaged over 1000 independent trials).
    pub fn full() -> Self {
        Config { trials: 1000, ..Default::default() }
    }
}

/// One sweep point, prepared up front so the trial closure is pure. The
/// threshold policy lives in `proto.threshold` (not duplicated here).
struct Point {
    w_max: f64,
    eps: f64,
    proto: UserControlledConfig,
    spec: WeightSpec,
    seed: u64,
}

/// Run the sweep. Columns: w_max, epsilon, threshold_label, rounds_mean,
/// rounds_ci95.
///
/// All `(w_max × epsilon)` points run as **one** pool batch through
/// [`harness::run_sweep`] — per-point seeds are unchanged from the old
/// per-point loop, so results are bit-identical to it (and to any run of
/// this version at any thread count).
pub fn run(cfg: &Config) -> Table {
    let mut table = Table::new(
        "epsilon_sweep",
        format!(
            "A4: balancing time vs epsilon (user-controlled, n={}, m={}, alpha={}, {} trials)",
            cfg.n, cfg.m, cfg.alpha, cfg.trials
        ),
        &["w_max", "epsilon", "threshold", "rounds_mean", "rounds_ci95"],
    );
    let mut points = Vec::new();
    for &w_max in &cfg.w_maxes {
        let spec = WeightSpec::figure2(cfg.m, w_max);
        for &eps in &cfg.epsilons {
            let policy = if eps == 0.0 {
                ThresholdPolicy::Tight
            } else {
                ThresholdPolicy::AboveAverage { epsilon: eps }
            };
            points.push(Point {
                w_max,
                eps,
                proto: UserControlledConfig {
                    threshold: policy,
                    alpha: cfg.alpha,
                    ..Default::default()
                },
                spec: spec.clone(),
                seed: cfg.seed ^ (eps * 1e6) as u64 ^ ((w_max as u64) << 40),
            });
        }
    }
    let seeds: Vec<u64> = points.iter().map(|p| p.seed).collect();
    let n = cfg.n;
    let results = harness::run_sweep(&seeds, cfg.trials, |i, s| {
        let p = &points[i];
        let mut rng = SmallRng::seed_from_u64(s);
        let tasks = p.spec.generate(&mut rng);
        run_user_controlled(n, &tasks, Placement::AllOnOne(0), &p.proto, &mut rng).rounds as f64
    });
    for (p, samples) in points.iter().zip(&results) {
        let s = Summary::of(samples);
        table.push_row(vec![
            format!("{:.0}", p.w_max),
            format!("{}", p.eps),
            p.proto.threshold.label(),
            format!("{:.2}", s.mean),
            format!("{:.2}", s.ci95),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tight_threshold_is_slowest() {
        // Uniform tasks with W/n ≫ w_max: the ε slack dominates and the
        // tight threshold must be measurably slower.
        let cfg = Config { n: 40, m: 1200, w_maxes: vec![1.0], trials: 20, ..Config::quick() };
        let t = run(&cfg);
        let rounds = t.column_f64("rounds_mean");
        // epsilons are ascending: tight (0.0) first.
        assert!(
            rounds[0] > *rounds.last().unwrap(),
            "tight should be slower than eps=1: {rounds:?}"
        );
    }

    #[test]
    fn all_epsilons_produce_rows() {
        let cfg = Config::quick();
        let t = run(&cfg);
        assert_eq!(t.rows.len(), cfg.epsilons.len() * cfg.w_maxes.len());
        assert!(t.rows[0][2].contains("tight"));
    }
}
