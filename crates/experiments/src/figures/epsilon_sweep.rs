//! **A4 — ε sweep**: above-average vs tight thresholds for the
//! user-controlled protocol (Theorem 11 vs Theorem 12).
//!
//! As `ε → 0` the threshold approaches the tight `W/n + w_max` and the
//! Theorem-11 bound degrades to Theorem 12's `n`-dependent one. The sweep
//! measures the blow-up empirically: mean balancing time per ε, including
//! the exact tight threshold as the `ε = 0` endpoint.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_core::placement::Placement;
use tlb_core::protocol::EngineStats;
use tlb_core::threshold::ThresholdPolicy;
use tlb_core::user_protocol::{run_user_controlled_with_stats, UserControlledConfig};
use tlb_core::weights::WeightSpec;
use tlb_obs::{ObsReport, Registry};

use crate::harness;
use crate::output::Table;
use crate::stats::Summary;

/// Configuration for the ε sweep.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of resources.
    pub n: usize,
    /// Number of tasks.
    pub m: usize,
    /// Heavy-task weights to sweep (single heavy task; 1.0 = uniform).
    /// The ε effect only shows when the *endgame* (finding the last slots)
    /// dominates — i.e. for uniform tasks near saturation; with a heavy
    /// task the hotspot drain dominates and all thresholds cost the same.
    /// Sweeping both exposes exactly that contrast.
    pub w_maxes: Vec<f64>,
    /// ε values; 0 means the tight threshold.
    pub epsilons: Vec<f64>,
    /// Migration damping.
    pub alpha: f64,
    /// Trials per ε.
    pub trials: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        // Keep W/n well above w_max so the ε term of the threshold is the
        // binding constraint (with w_max ≫ W/n all policies coincide up to
        // the +w_max slack and the sweep shows nothing).
        Config {
            n: 100,
            m: 5000,
            w_maxes: vec![1.0, 16.0],
            epsilons: vec![0.0, 0.05, 0.1, 0.2, 0.5, 1.0],
            alpha: 1.0,
            trials: 200,
            seed: 0xA4,
        }
    }
}

impl Config {
    /// Reduced configuration for smoke tests and benches.
    pub fn quick() -> Self {
        Config {
            n: 50,
            m: 1500,
            w_maxes: vec![1.0],
            epsilons: vec![0.0, 0.2, 1.0],
            trials: 20,
            ..Default::default()
        }
    }

    /// Paper-fidelity configuration: the Section-7 trial count (every
    /// data point averaged over 1000 independent trials).
    pub fn full() -> Self {
        Config { trials: 1000, ..Default::default() }
    }
}

/// One sweep point, prepared up front so the trial closure is pure. The
/// threshold policy lives in `proto.threshold` (not duplicated here).
struct Point {
    w_max: f64,
    eps: f64,
    proto: UserControlledConfig,
    spec: WeightSpec,
    seed: u64,
}

/// Run the sweep. Columns: w_max, epsilon, threshold_label, rounds_mean,
/// rounds_ci95.
///
/// All `(w_max × epsilon)` points run as **one** pool batch through
/// [`harness::run_sweep`] — per-point seeds are unchanged from the old
/// per-point loop, so results are bit-identical to it (and to any run of
/// this version at any thread count).
pub fn run(cfg: &Config) -> Table {
    run_obs(cfg).0
}

/// [`run`], also returning the sweep's observability report: the
/// `counters` subtree aggregates the deterministic per-point totals and
/// the engine's [`EngineStats`] across every trial (bit-identical across
/// thread counts), `timings` carries the sweep wall time, and `exec` the
/// rayon pool deltas the sweep caused — the same shape
/// `protocol_matrix` already reports.
pub fn run_obs(cfg: &Config) -> (Table, ObsReport) {
    let reg = Registry::new();
    let pool_base = rayon::pool_stats();
    let t_sweep = std::time::Instant::now();
    let mut table = Table::new(
        "epsilon_sweep",
        format!(
            "A4: balancing time vs epsilon (user-controlled, n={}, m={}, alpha={}, {} trials)",
            cfg.n, cfg.m, cfg.alpha, cfg.trials
        ),
        &["w_max", "epsilon", "threshold", "rounds_mean", "rounds_ci95"],
    );
    let mut points = Vec::new();
    for &w_max in &cfg.w_maxes {
        let spec = WeightSpec::figure2(cfg.m, w_max);
        for &eps in &cfg.epsilons {
            let policy = if eps == 0.0 {
                ThresholdPolicy::Tight
            } else {
                ThresholdPolicy::AboveAverage { epsilon: eps }
            };
            points.push(Point {
                w_max,
                eps,
                proto: UserControlledConfig {
                    threshold: policy,
                    alpha: cfg.alpha,
                    ..Default::default()
                },
                spec: spec.clone(),
                seed: cfg.seed ^ (eps * 1e6) as u64 ^ ((w_max as u64) << 40),
            });
        }
    }
    let seeds: Vec<u64> = points.iter().map(|p| p.seed).collect();
    let n = cfg.n;
    let results = harness::run_sweep_map(&seeds, cfg.trials, |i, s| {
        let p = &points[i];
        let mut rng = SmallRng::seed_from_u64(s);
        let tasks = p.spec.generate(&mut rng);
        let (out, stats) =
            run_user_controlled_with_stats(n, &tasks, Placement::AllOnOne(0), &p.proto, &mut rng);
        (out.rounds as f64, stats)
    });
    let mut merged = EngineStats::default();
    for (p, samples) in points.iter().zip(&results) {
        reg.add("epsilon.points", 1);
        reg.add("epsilon.trials", samples.len() as u64);
        reg.add("epsilon.rounds", samples.iter().map(|(r, _)| *r as u64).sum());
        for (_, stats) in samples {
            merged.merge(stats);
        }
        let rounds: Vec<f64> = samples.iter().map(|(r, _)| *r).collect();
        let s = Summary::of(&rounds);
        table.push_row(vec![
            format!("{:.0}", p.w_max),
            format!("{}", p.eps),
            p.proto.threshold.label(),
            format!("{:.2}", s.mean),
            format!("{:.2}", s.ci95),
        ]);
    }
    super::record_engine_stats(&reg, "epsilon", &merged);
    reg.record_ns("epsilon.sweep_ns", t_sweep.elapsed().as_nanos() as u64);
    let pool = rayon::pool_stats();
    reg.set_exec("pool.threads", pool.threads as u64);
    reg.set_exec("pool.batches", pool.batches.saturating_sub(pool_base.batches));
    reg.set_exec(
        "pool.chunks_claimed",
        pool.chunks_claimed.saturating_sub(pool_base.chunks_claimed),
    );
    (table, reg.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tight_threshold_is_slowest() {
        // Uniform tasks with W/n ≫ w_max: the ε slack dominates and the
        // tight threshold must be measurably slower.
        let cfg = Config { n: 40, m: 1200, w_maxes: vec![1.0], trials: 20, ..Config::quick() };
        let t = run(&cfg);
        let rounds = t.column_f64("rounds_mean");
        // epsilons are ascending: tight (0.0) first.
        assert!(
            rounds[0] > *rounds.last().unwrap(),
            "tight should be slower than eps=1: {rounds:?}"
        );
    }

    #[test]
    fn all_epsilons_produce_rows() {
        let cfg = Config::quick();
        let t = run(&cfg);
        assert_eq!(t.rows.len(), cfg.epsilons.len() * cfg.w_maxes.len());
        assert!(t.rows[0][2].contains("tight"));
    }

    #[test]
    fn obs_counters_aggregate_the_sweep_deterministically() {
        let cfg = Config { trials: 3, ..Config::quick() };
        let (table, obs) = run_obs(&cfg);
        assert_eq!(obs.counters["epsilon.points"], table.rows.len() as u64);
        assert_eq!(obs.counters["epsilon.trials"], (table.rows.len() * cfg.trials) as u64);
        assert!(obs.counters["epsilon.rounds"] > 0);
        assert!(obs.counters["epsilon.uniform_jump_draws"] > 0);
        assert!(obs.timings.contains_key("epsilon.sweep_ns"));
        // The deterministic subtree is byte-stable run to run; the table
        // itself must be unchanged by the instrumentation.
        let (again_table, again) = run_obs(&cfg);
        assert_eq!(again_table, table);
        assert_eq!(again.counters_json(), obs.counters_json());
    }
}
