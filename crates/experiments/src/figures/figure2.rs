//! **F2 — Figure 2**: user-controlled balancing time normalized by
//! `log m`, as a function of the number of tasks `m`, for a single heavy
//! task of weight `w_max ∈ {1, 2, 4, …, 256}`.
//!
//! Paper setting: `n = 1000`, `ε = 0.2`, `α = 1`, all tasks on one
//! resource, 1000 trials. Finding: the normalized time is flat in `m` and
//! almost linear in `w_max/w_min`, i.e. Theorem 11 is tight up to a
//! constant.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_core::placement::Placement;
use tlb_core::threshold::ThresholdPolicy;
use tlb_core::user_protocol::{run_user_controlled, UserControlledConfig};
use tlb_core::weights::WeightSpec;

use crate::harness;
use crate::output::Table;
use crate::stats::{linear_fit, Summary};

/// Configuration of the Figure-2 sweep.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of resources (paper: 1000).
    pub n: usize,
    /// Threshold slack (paper: 0.2).
    pub epsilon: f64,
    /// Migration damping (paper: 1.0).
    pub alpha: f64,
    /// Heavy-task weights to sweep (paper: 1, 2, 4, …, 256).
    pub w_maxes: Vec<f64>,
    /// Task counts to sweep (paper: up to 5000).
    pub ms: Vec<usize>,
    /// Trials per point (paper: 1000).
    pub trials: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n: 1000,
            epsilon: 0.2,
            alpha: 1.0,
            w_maxes: (0..=8).map(|e| (1u64 << e) as f64).collect(),
            ms: (1..=10).map(|i| i * 500).collect(),
            trials: 1000,
            seed: 0xF162,
        }
    }
}

impl Config {
    /// Reduced sweep for smoke tests and benches.
    pub fn quick() -> Self {
        Config {
            n: 200,
            w_maxes: vec![1.0, 8.0, 64.0],
            ms: vec![1000, 3000, 5000],
            trials: 30,
            ..Default::default()
        }
    }
}

/// Mean balancing time for one `(m, w_max)` point.
pub fn point(cfg: &Config, m: usize, w_max: f64) -> Summary {
    let spec = WeightSpec::figure2(m, w_max);
    let proto = UserControlledConfig {
        threshold: ThresholdPolicy::AboveAverage { epsilon: cfg.epsilon },
        alpha: cfg.alpha,
        ..Default::default()
    };
    let n = cfg.n;
    let samples =
        harness::run_trials(cfg.trials, cfg.seed ^ ((m as u64) << 20) ^ (w_max as u64), |s| {
            let mut rng = SmallRng::seed_from_u64(s);
            let tasks = spec.generate(&mut rng);
            run_user_controlled(n, &tasks, Placement::AllOnOne(0), &proto, &mut rng).rounds as f64
        });
    Summary::of(&samples)
}

/// Run the sweep. Columns: `w_max, m, rounds_mean, rounds_ci95,
/// normalized` where `normalized = rounds / ln m` is the paper's y-axis.
pub fn run(cfg: &Config) -> Table {
    let mut table = Table::new(
        "figure2",
        format!(
            "Figure 2: normalized balancing time vs m per w_max (user-controlled, n={}, eps={}, alpha={}, {} trials)",
            cfg.n, cfg.epsilon, cfg.alpha, cfg.trials
        ),
        &["w_max", "m", "rounds_mean", "rounds_ci95", "normalized"],
    );
    for &w_max in &cfg.w_maxes {
        for &m in &cfg.ms {
            let s = point(cfg, m, w_max);
            table.push_row(vec![
                format!("{w_max:.0}"),
                m.to_string(),
                format!("{:.2}", s.mean),
                format!("{:.2}", s.ci95),
                format!("{:.3}", s.mean / (m as f64).ln()),
            ]);
        }
    }
    table
}

/// Shape checks for EXPERIMENTS.md:
///
/// 1. per-`w_max` flatness of `normalized` in `m` (max/min ratio),
/// 2. linearity of the per-`w_max` mean plateau in `w_max`
///    (`plateau ~ a + b·w_max`, returns `(b, r²)`).
pub fn shape_checks(cfg: &Config, table: &Table) -> (Vec<(f64, f64)>, (f64, f64)) {
    let mut flatness = Vec::new();
    let mut plateau_x = Vec::new();
    let mut plateau_y = Vec::new();
    for &w_max in &cfg.w_maxes {
        let mut vals = Vec::new();
        for row in &table.rows {
            if row[0] == format!("{w_max:.0}") {
                vals.push(row[4].parse::<f64>().expect("normalized numeric"));
            }
        }
        if vals.is_empty() {
            continue;
        }
        let max = vals.iter().fold(f64::MIN, |a, &b| a.max(b));
        let min = vals.iter().fold(f64::MAX, |a, &b| a.min(b));
        flatness.push((w_max, max / min));
        plateau_x.push(w_max);
        plateau_y.push(vals.iter().sum::<f64>() / vals.len() as f64);
    }
    let (_, slope, r2) = linear_fit(&plateau_x, &plateau_y);
    (flatness, (slope, r2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Config {
        Config {
            n: 50,
            w_maxes: vec![1.0, 16.0],
            ms: vec![300, 900],
            trials: 10,
            ..Config::default()
        }
    }

    #[test]
    fn sweep_produces_all_points() {
        let cfg = tiny();
        let t = run(&cfg);
        assert_eq!(t.rows.len(), 4);
    }

    #[test]
    fn heavier_wmax_increases_normalized_time() {
        let cfg = tiny();
        let light = point(&cfg, 900, 1.0);
        let heavy = point(&cfg, 900, 16.0);
        assert!(
            heavy.mean > light.mean,
            "w_max = 16 should balance slower: {} vs {}",
            light.mean,
            heavy.mean
        );
    }

    #[test]
    fn shape_checks_return_per_wmax_entries() {
        let cfg = tiny();
        let t = run(&cfg);
        let (flatness, (slope, _r2)) = shape_checks(&cfg, &t);
        assert_eq!(flatness.len(), 2);
        for (_w, ratio) in &flatness {
            assert!(*ratio >= 1.0);
        }
        assert!(slope > 0.0, "normalized time must grow with w_max");
    }
}
