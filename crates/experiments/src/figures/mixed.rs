//! **A7 — mixed protocol** (paper Section 8 future work): the mixed
//! resource/user protocol head-to-head against both paper protocols.
//!
//! On the complete graph all three should land in the same
//! `O(log m)`-ish regime; on sparse graphs the user-controlled protocol is
//! unavailable (it needs uniform jumps) and the comparison is mixed vs
//! resource-controlled — the mixed protocol trades slower single-round
//! drain (Bernoulli departures) for the same walk-limited spreading.
//!
//! All `(family × protocol)` cells run as **one** pool batch through the
//! protocol-generic [`harness::run_protocol_sweep`] — each cell is a
//! [`ProtocolPoint`] holding its [`ProtocolKind`], so adding a fourth
//! protocol is one more point, not another hand-rolled closure. Per-cell
//! seeds match the old per-protocol loops, so results are bit-identical
//! to them.

use tlb_core::mixed_protocol::{Departure, MixedConfig};
use tlb_core::placement::Placement;
use tlb_core::protocol::ProtocolKind;
use tlb_core::resource_protocol::ResourceControlledConfig;
use tlb_core::user_protocol::UserControlledConfig;
use tlb_core::weights::WeightSpec;
use tlb_graphs::generators::Family;

use crate::figures::table1::build_family;
use crate::harness::{self, MatrixProtocol, ProtocolPoint};
use crate::output::Table;
use crate::stats::Summary;

/// Configuration for the mixed-protocol comparison.
#[derive(Debug, Clone)]
pub struct Config {
    /// Approximate graph size per family.
    pub size: usize,
    /// Tasks per resource.
    pub tasks_per_node: usize,
    /// Trials per point.
    pub trials: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config { size: 256, tasks_per_node: 10, trials: 100, seed: 0xA7 }
    }
}

impl Config {
    /// Reduced configuration for smoke tests and benches.
    pub fn quick() -> Self {
        Config { size: 64, trials: 15, ..Default::default() }
    }

    /// Paper-fidelity configuration: the Section-7 trial count (every
    /// data point averaged over 1000 independent trials).
    pub fn full() -> Self {
        Config { trials: 1000, ..Default::default() }
    }
}

/// Run the comparison. Columns: family, protocol, rounds_mean,
/// rounds_ci95, migrations_mean.
pub fn run(cfg: &Config) -> Table {
    let mut table = Table::new(
        "mixed_comparison",
        format!(
            "A7/Section 8: mixed protocol vs the paper's two (size~{}, {} trials, Pareto weights)",
            cfg.size, cfg.trials
        ),
        &["family", "protocol", "rounds_mean", "rounds_ci95", "migrations_mean"],
    );
    // One ProtocolPoint per (family × protocol) cell, in row order. The
    // seed salts (^1 resource, ^2 mixed, ^3 user) are unchanged from the
    // per-protocol loops this sweep replaces.
    let mut points: Vec<(Family, ProtocolPoint)> = Vec::new();
    for family in [Family::Complete, Family::RegularExpander, Family::Grid] {
        let (g, kind) = build_family(family, cfg.size, cfg.seed);
        let m = g.num_nodes() * cfg.tasks_per_node;
        let spec = WeightSpec::ParetoTruncated { m, alpha: 1.5, cap: 32.0 };
        let mk = |protocol: ProtocolKind, salt: u64| ProtocolPoint {
            graph: g.clone(),
            weights: spec.clone(),
            placement: Placement::AllOnOne(0),
            protocol: MatrixProtocol::Core(protocol),
            seed: cfg.seed ^ salt,
        };
        points.push((
            family,
            mk(
                ProtocolKind::Resource(ResourceControlledConfig {
                    walk: kind,
                    ..Default::default()
                }),
                1,
            ),
        ));
        points.push((
            family,
            mk(
                ProtocolKind::Mixed(MixedConfig {
                    departure: Departure::Bernoulli,
                    walk: kind,
                    ..Default::default()
                }),
                2,
            ),
        ));
        if family == Family::Complete {
            points.push((family, mk(ProtocolKind::User(UserControlledConfig::default()), 3)));
        }
    }
    let cells: Vec<ProtocolPoint> = points.iter().map(|(_, p)| p.clone()).collect();
    let results = harness::run_protocol_sweep(&cells, cfg.trials);
    for ((family, point), outcomes) in points.iter().zip(&results) {
        let rounds: Vec<f64> = outcomes.iter().map(|o| o.rounds as f64).collect();
        let migs: Vec<f64> = outcomes.iter().map(|o| o.migrations as f64).collect();
        let rs = Summary::of(&rounds);
        let ms = Summary::of(&migs);
        table.push_row(vec![
            family.name().to_string(),
            point.protocol.label(),
            format!("{:.2}", rs.mean),
            format!("{:.2}", rs.ci95),
            format!("{:.0}", ms.mean),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_covers_three_families_and_protocols() {
        let cfg = Config::quick();
        let t = run(&cfg);
        // complete: 3 protocols; expander + grid: 2 each = 7 rows
        assert_eq!(t.rows.len(), 7);
        for r in t.column_f64("rounds_mean") {
            assert!(r >= 1.0);
        }
    }

    #[test]
    fn mixed_and_user_agree_on_complete_graph() {
        let cfg = Config::quick();
        let t = run(&cfg);
        let get = |proto: &str| -> f64 {
            t.rows
                .iter()
                .find(|r| r[0] == "Complete Graph" && r[1] == proto)
                .map(|r| r[2].parse().unwrap())
                .unwrap()
        };
        let mixed = get("mixed");
        let user = get("user");
        let ratio = mixed / user;
        assert!((0.4..=2.5).contains(&ratio), "mixed {mixed} vs user {user}");
    }
}
