//! **A7 — mixed protocol** (paper Section 8 future work): the mixed
//! resource/user protocol head-to-head against both paper protocols.
//!
//! On the complete graph all three should land in the same
//! `O(log m)`-ish regime; on sparse graphs the user-controlled protocol is
//! unavailable (it needs uniform jumps) and the comparison is mixed vs
//! resource-controlled — the mixed protocol trades slower single-round
//! drain (Bernoulli departures) for the same walk-limited spreading.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_core::mixed_protocol::{run_mixed, Departure, MixedConfig};
use tlb_core::placement::Placement;
use tlb_core::resource_protocol::{run_resource_controlled, ResourceControlledConfig};
use tlb_core::user_protocol::{run_user_controlled, UserControlledConfig};
use tlb_core::weights::WeightSpec;
use tlb_graphs::generators::Family;

use crate::figures::table1::build_family;
use crate::harness;
use crate::output::Table;
use crate::stats::Summary;

/// Configuration for the mixed-protocol comparison.
#[derive(Debug, Clone)]
pub struct Config {
    /// Approximate graph size per family.
    pub size: usize,
    /// Tasks per resource.
    pub tasks_per_node: usize,
    /// Trials per point.
    pub trials: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config { size: 256, tasks_per_node: 10, trials: 100, seed: 0xA7 }
    }
}

impl Config {
    /// Reduced configuration for smoke tests and benches.
    pub fn quick() -> Self {
        Config { size: 64, trials: 15, ..Default::default() }
    }
}

/// Run the comparison. Columns: family, protocol, rounds_mean,
/// rounds_ci95, migrations_mean.
pub fn run(cfg: &Config) -> Table {
    let mut table = Table::new(
        "mixed_comparison",
        format!(
            "A7/Section 8: mixed protocol vs the paper's two (size~{}, {} trials, Pareto weights)",
            cfg.size, cfg.trials
        ),
        &["family", "protocol", "rounds_mean", "rounds_ci95", "migrations_mean"],
    );
    for family in [Family::Complete, Family::RegularExpander, Family::Grid] {
        let (g, kind) = build_family(family, cfg.size, cfg.seed);
        let n = g.num_nodes();
        let m = n * cfg.tasks_per_node;
        let spec = WeightSpec::ParetoTruncated { m, alpha: 1.5, cap: 32.0 };

        // (protocol label, closure seed-salt)
        let mut push = |label: &str, samples: Vec<(f64, f64)>| {
            let rounds: Vec<f64> = samples.iter().map(|s| s.0).collect();
            let migs: Vec<f64> = samples.iter().map(|s| s.1).collect();
            let rs = Summary::of(&rounds);
            let ms = Summary::of(&migs);
            table.push_row(vec![
                family.name().to_string(),
                label.to_string(),
                format!("{:.2}", rs.mean),
                format!("{:.2}", rs.ci95),
                format!("{:.0}", ms.mean),
            ]);
        };

        let res_cfg = ResourceControlledConfig { walk: kind, ..Default::default() };
        push(
            "resource",
            harness::run_trials_map(cfg.trials, cfg.seed ^ 1, |s| {
                let mut rng = SmallRng::seed_from_u64(s);
                let tasks = spec.generate(&mut rng);
                let o =
                    run_resource_controlled(&g, &tasks, Placement::AllOnOne(0), &res_cfg, &mut rng);
                (o.rounds as f64, o.migrations as f64)
            }),
        );

        let mixed_cfg =
            MixedConfig { departure: Departure::Bernoulli, walk: kind, ..Default::default() };
        push(
            "mixed",
            harness::run_trials_map(cfg.trials, cfg.seed ^ 2, |s| {
                let mut rng = SmallRng::seed_from_u64(s);
                let tasks = spec.generate(&mut rng);
                let o = run_mixed(&g, &tasks, Placement::AllOnOne(0), &mixed_cfg, &mut rng);
                (o.rounds as f64, o.migrations as f64)
            }),
        );

        if family == Family::Complete {
            let user_cfg = UserControlledConfig::default();
            push(
                "user",
                harness::run_trials_map(cfg.trials, cfg.seed ^ 3, |s| {
                    let mut rng = SmallRng::seed_from_u64(s);
                    let tasks = spec.generate(&mut rng);
                    let o =
                        run_user_controlled(n, &tasks, Placement::AllOnOne(0), &user_cfg, &mut rng);
                    (o.rounds as f64, o.migrations as f64)
                }),
            );
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_covers_three_families_and_protocols() {
        let cfg = Config::quick();
        let t = run(&cfg);
        // complete: 3 protocols; expander + grid: 2 each = 7 rows
        assert_eq!(t.rows.len(), 7);
        for r in t.column_f64("rounds_mean") {
            assert!(r >= 1.0);
        }
    }

    #[test]
    fn mixed_and_user_agree_on_complete_graph() {
        let cfg = Config::quick();
        let t = run(&cfg);
        let get = |proto: &str| -> f64 {
            t.rows
                .iter()
                .find(|r| r[0] == "Complete Graph" && r[1] == proto)
                .map(|r| r[2].parse().unwrap())
                .unwrap()
        };
        let mixed = get("mixed");
        let user = get("user");
        let ratio = mixed / user;
        assert!((0.4..=2.5).contains(&ratio), "mixed {mixed} vs user {user}");
    }
}
