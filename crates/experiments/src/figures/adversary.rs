//! **R1 — adversary sweep**: the robustness layer under attack — how
//! much worse can an *adaptive* adversary make the online engine than
//! the oblivious arrival streams, and how fast does admission control
//! bring a fleet back after losing a whole failure domain.
//!
//! Two grids, both fully deterministic (bit-identical across thread and
//! shard counts, like every `tlb-sim` run):
//!
//! * **Overload gap** — one run per adversary: oblivious placements
//!   (`Uniform`, `HotSpot`) against the informed ones (`MostLoaded` and
//!   the scrape-driven `Adaptive` placement paired with
//!   `DomainSteering::Adaptive`), all over the same failure-domain
//!   churn. Each run reports its *gap*: `max_load / threshold`
//!   averaged (and peaked) over the post-warmup window — how far above
//!   the protocol's own target the adversary holds the worst resource.
//!   The acceptance property (pinned in this module's tests and in the
//!   CI `chaos` job): the adaptive adversary's gap strictly exceeds
//!   every oblivious placement's.
//!
//! * **Recovery** — one run per admission policy (`none`,
//!   `token_bucket`, `load_shed`) through a scripted whole-domain
//!   outage. Each run reports the fraction of offered work it shed and
//!   its *recovery time*: epochs after the domain returns until
//!   `max_load` first falls back to the pre-outage peak. Load shedding
//!   must recover within a bounded number of epochs — also pinned.
//!
//! The driver (`adversary_sweep`) persists the grid as
//! `adversary_sweep.{csv,json}` plus the `BENCH_adversary.json`
//! snapshot; no wall-clock field enters the snapshot, so CI byte-diffs
//! it across `RAYON_NUM_THREADS` × shard counts.

use tlb_graphs::generators::torus2d;
use tlb_sim::{
    AdmissionPolicy, ArrivalPlacement, ArrivalProcess, ChurnEvent, DomainSpec, DomainSteering,
    OnlineSim, OutageDuration, SimConfig, SimReport,
};

use crate::output::Table;

/// Configuration of the adversary sweep.
#[derive(Debug, Clone)]
pub struct Config {
    /// Torus side; the fleet is `side × side` resources.
    pub side: usize,
    /// How many failure domains the fleet splits into (equal contiguous
    /// id ranges; must divide `side²`). Few large domains make an
    /// outage a serious capacity event.
    pub racks: usize,
    /// Epochs per run.
    pub epochs: u64,
    /// Epochs discarded before gap statistics start.
    pub warmup: u64,
    /// Poisson arrival rate (tasks per epoch).
    pub rate: f64,
    /// Per-task per-epoch departure probability.
    pub departure_prob: f64,
    /// Protocol-round budget per epoch (kept scarce so an adversary has
    /// residual imbalance to exploit).
    pub rounds_per_epoch: u64,
    /// Stochastic whole-rack outage probability per epoch (gap grid).
    pub domain_outage: f64,
    /// Scripted outage for the recovery grid: the first rack goes down
    /// at `warmup` for this many epochs.
    pub outage_epochs: u64,
    /// Base seed shared by every cell.
    pub seed: u64,
    /// Shard count of the rebalancing pass (output-invariant; the CI
    /// chaos job crosses it with thread counts and byte-diffs).
    pub shards: usize,
    /// Recorded in the snapshot so baselines at different scales never
    /// diff clean.
    pub quick: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            side: 12,
            racks: 3,
            epochs: 400,
            warmup: 60,
            rate: 120.0,
            departure_prob: 0.1,
            rounds_per_epoch: 4,
            domain_outage: 0.08,
            outage_epochs: 40,
            seed: 0xAD5E,
            shards: 1,
            quick: false,
        }
    }
}

impl Config {
    /// Reduced configuration for smoke tests and the CI chaos gate.
    /// Departures are slowed to `0.05` so piles decay over ~20 epochs:
    /// at that time constant the informed adversaries' compounding
    /// attacks (re-aiming at the surviving mound every epoch) clearly
    /// outrun fixed-target drilling, while the 40-epoch warmup still
    /// covers two full population time constants before measurement.
    pub fn quick() -> Self {
        Config {
            side: 6,
            epochs: 120,
            warmup: 40,
            rate: 30.0,
            departure_prob: 0.05,
            outage_epochs: 12,
            quick: true,
            ..Default::default()
        }
    }

    /// The fleet split into `racks` equal contiguous id ranges.
    fn racks(&self) -> Vec<DomainSpec> {
        let n = self.side * self.side;
        assert_eq!(n % self.racks, 0, "racks must divide the fleet size");
        let per = n / self.racks;
        (0..self.racks)
            .map(|r| DomainSpec::new(format!("rack{r}"), (r * per) as u32, ((r + 1) * per) as u32))
            .collect()
    }

    /// The scenario shared by every cell of both grids.
    fn base(&self, name: &str) -> SimConfig {
        let mut cfg = SimConfig {
            name: name.into(),
            epochs: self.epochs,
            seed: self.seed,
            arrivals: ArrivalProcess::Poisson { rate: self.rate },
            departure_prob: self.departure_prob,
            rounds_per_epoch: self.rounds_per_epoch,
            shards: self.shards,
            ..Default::default()
        };
        cfg.churn.domains = self.racks();
        cfg.churn.outage = OutageDuration { alpha: 1.5, min_epochs: 2, max_epochs: 8 };
        cfg
    }
}

/// One adversary's row in the overload-gap grid.
#[derive(Debug, Clone, PartialEq)]
pub struct GapRow {
    /// Adversary label (report key).
    pub adversary: &'static str,
    /// Whether the arrival stream is load-oblivious (the acceptance
    /// property compares the adaptive row against exactly these).
    pub oblivious: bool,
    /// Mean of `max_load / threshold` over the post-warmup window.
    pub mean_gap: f64,
    /// Peak of the same ratio.
    pub peak_gap: f64,
    /// Peak absolute load over the window.
    pub peak_load: f64,
}

/// One admission policy's row in the recovery grid.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryRow {
    /// Admission label (report key).
    pub admission: &'static str,
    /// Fraction of offered arrivals the policy rejected.
    pub shed_fraction: f64,
    /// Epochs after the failed rack returned until `max_load` first
    /// fell back to the pre-outage peak; `None` if the run never got
    /// back down.
    pub recovery_epochs: Option<u64>,
    /// Peak load during + after the outage.
    pub peak_load: f64,
}

/// The sweep's full result set.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversaryReport {
    /// Overload-gap grid, one row per adversary.
    pub gap: Vec<GapRow>,
    /// Recovery grid, one row per admission policy.
    pub recovery: Vec<RecoveryRow>,
    /// The configuration's `quick` flag (stamped into the snapshot).
    pub quick: bool,
}

/// Gap statistics over the post-warmup window of one run.
fn gap_stats(report: &SimReport, warmup: u64) -> (f64, f64, f64) {
    let (mut sum, mut count, mut peak_gap, mut peak_load) = (0.0f64, 0u64, 0.0f64, 0.0f64);
    for r in report.records.iter().filter(|r| r.epoch >= warmup && r.threshold > 0.0) {
        let gap = r.max_load / r.threshold;
        sum += gap;
        count += 1;
        peak_gap = peak_gap.max(gap);
        peak_load = peak_load.max(r.max_load);
    }
    (if count > 0 { sum / count as f64 } else { 0.0 }, peak_gap, peak_load)
}

/// Run the overload-gap grid: every adversary over the identical
/// stochastic-outage scenario.
fn run_gap(cfg: &Config) -> Vec<GapRow> {
    let adversaries: [(&'static str, bool, ArrivalPlacement, DomainSteering); 5] = [
        ("uniform", true, ArrivalPlacement::Uniform, DomainSteering::Oblivious),
        ("hotspot", true, ArrivalPlacement::HotSpot(0), DomainSteering::Oblivious),
        ("most_loaded", false, ArrivalPlacement::MostLoaded, DomainSteering::Oblivious),
        ("adaptive", false, ArrivalPlacement::Adaptive { spread: 1 }, DomainSteering::Oblivious),
        // The full adversary also steers the rack outages onto the
        // most-loaded domain. Counter-intuitively that can *lower* the
        // standing overload (each steered outage scatters the pile the
        // placement half built), so it is reported as its own row
        // rather than folded into the acceptance comparison.
        (
            "adaptive_steered",
            false,
            ArrivalPlacement::Adaptive { spread: 1 },
            DomainSteering::Adaptive,
        ),
    ];
    adversaries
        .into_iter()
        .map(|(label, oblivious, placement, steering)| {
            let mut sim_cfg = cfg.base(&format!("gap-{label}"));
            sim_cfg.arrival_placement = placement;
            sim_cfg.churn.domain_outage = cfg.domain_outage;
            sim_cfg.churn.steering = steering;
            let report = OnlineSim::new(torus2d(cfg.side, cfg.side), sim_cfg).run();
            let (mean_gap, peak_gap, peak_load) = gap_stats(&report, cfg.warmup);
            GapRow { adversary: label, oblivious, mean_gap, peak_gap, peak_load }
        })
        .collect()
}

/// Run the recovery grid: a scripted whole-rack outage under each
/// admission policy.
fn run_recovery(cfg: &Config) -> Vec<RecoveryRow> {
    // The shed cap sits just above the healthy-fleet mean load
    // (`rate / departure_prob` live tasks over `side²` resources), so
    // it binds during the outage and releases after recovery.
    let healthy_mean = cfg.rate / cfg.departure_prob / (cfg.side * cfg.side) as f64;
    let policies: [(&'static str, AdmissionPolicy); 3] = [
        ("none", AdmissionPolicy::None),
        (
            "token_bucket",
            AdmissionPolicy::TokenBucket { rate: cfg.rate * 0.8, burst: cfg.rate * 2.0 },
        ),
        ("load_shed", AdmissionPolicy::LoadShed { max_mean_load: healthy_mean * 1.05 }),
    ];
    let down_at = cfg.warmup;
    let back_at = cfg.warmup + cfg.outage_epochs;
    policies
        .into_iter()
        .map(|(label, admission)| {
            let mut sim_cfg = cfg.base(&format!("recovery-{label}"));
            sim_cfg.admission = admission;
            sim_cfg.churn.scripted = vec![(
                down_at,
                ChurnEvent::DomainOutage { domain: 0, duration: cfg.outage_epochs },
            )];
            let report = OnlineSim::new(torus2d(cfg.side, cfg.side), sim_cfg).run();
            // Pre-outage peak over the last stretch of warmup (the
            // population has equilibrated by then): what "recovered"
            // means for this run.
            let baseline = report
                .records
                .iter()
                .filter(|r| r.epoch + 10 >= down_at && r.epoch < down_at)
                .map(|r| r.max_load)
                .fold(0.0f64, f64::max);
            let recovery_epochs = report
                .records
                .iter()
                .filter(|r| r.epoch >= back_at && r.max_load <= baseline)
                .map(|r| r.epoch - back_at)
                .next();
            let peak_load = report
                .records
                .iter()
                .filter(|r| r.epoch >= down_at)
                .map(|r| r.max_load)
                .fold(0.0f64, f64::max);
            RecoveryRow {
                admission: label,
                shed_fraction: report.shed_fraction,
                recovery_epochs,
                peak_load,
            }
        })
        .collect()
}

/// Run both grids.
pub fn run(cfg: &Config) -> AdversaryReport {
    AdversaryReport { gap: run_gap(cfg), recovery: run_recovery(cfg), quick: cfg.quick }
}

impl AdversaryReport {
    /// Render both grids as one table (`section` column distinguishes
    /// them) for the standard CSV/JSON artifacts.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "adversary_sweep",
            "R1: adaptive adversaries vs oblivious streams (overload gap) and admission-control \
             recovery from a whole-domain outage",
            &[
                "section",
                "label",
                "oblivious",
                "mean_gap",
                "peak_gap",
                "peak_load",
                "shed_fraction",
                "recovery_epochs",
            ],
        );
        for r in &self.gap {
            t.push_row(vec![
                "gap".into(),
                r.adversary.into(),
                r.oblivious.to_string(),
                format!("{:.4}", r.mean_gap),
                format!("{:.4}", r.peak_gap),
                format!("{:.4}", r.peak_load),
                String::new(),
                String::new(),
            ]);
        }
        for r in &self.recovery {
            t.push_row(vec![
                "recovery".into(),
                r.admission.into(),
                String::new(),
                String::new(),
                String::new(),
                format!("{:.4}", r.peak_load),
                format!("{:.6}", r.shed_fraction),
                r.recovery_epochs.map_or("unrecovered".into(), |e| e.to_string()),
            ]);
        }
        t
    }

    /// The `BENCH_adversary.json` snapshot. Deliberately carries **no
    /// wall-clock field** — every value is a deterministic function of
    /// the config, so CI byte-diffs the file across thread × shard
    /// grids and `bench_compare` runs advisory against the checked-in
    /// baseline.
    pub fn to_bench_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"bench\": \"adversary_sweep\",\n");
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str("  \"gap\": [\n");
        for (i, r) in self.gap.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"adversary\": \"{}\", \"oblivious\": {}, \"mean_gap\": {:.6}, \
                 \"peak_gap\": {:.6}, \"peak_load\": {:.6} }}{}\n",
                r.adversary,
                r.oblivious,
                r.mean_gap,
                r.peak_gap,
                r.peak_load,
                if i + 1 < self.gap.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"recovery\": [\n");
        for (i, r) in self.recovery.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"admission\": \"{}\", \"shed_fraction\": {:.6}, \
                 \"recovery_epochs\": {}, \"peak_load\": {:.6} }}{}\n",
                r.admission,
                r.shed_fraction,
                r.recovery_epochs.map_or(-1i64, |e| e as i64),
                r.peak_load,
                if i + 1 < self.recovery.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_report() -> AdversaryReport {
        run(&Config::quick())
    }

    #[test]
    fn sweep_is_deterministic() {
        assert_eq!(quick_report(), quick_report());
    }

    #[test]
    fn adaptive_adversary_beats_every_oblivious_stream() {
        // The tentpole acceptance property at quick scale: both
        // scrape-driven adaptive adversaries push the worst resource
        // strictly further over the protocol's target (`peak_gap` =
        // max over the window of `max_load / threshold`) than every
        // load-oblivious placement manages.
        let report = quick_report();
        for label in ["adaptive", "adaptive_steered"] {
            let adaptive = report.gap.iter().find(|r| r.adversary == label).expect("row");
            assert!(!adaptive.oblivious);
            assert!(adaptive.peak_gap.is_finite() && adaptive.peak_gap > 1.0);
            for r in report.gap.iter().filter(|r| r.oblivious) {
                assert!(
                    adaptive.peak_gap > r.peak_gap,
                    "{label} peak gap {:.4} must exceed {} at {:.4}",
                    adaptive.peak_gap,
                    r.adversary,
                    r.peak_gap
                );
            }
        }
        // And the adaptive stream also beats uniform on *standing*
        // overload, not just the spike.
        let adaptive = report.gap.iter().find(|r| r.adversary == "adaptive").unwrap();
        let uniform = report.gap.iter().find(|r| r.adversary == "uniform").unwrap();
        assert!(adaptive.mean_gap > uniform.mean_gap);
    }

    #[test]
    fn load_shedding_recovers_from_a_whole_rack_outage_within_bound() {
        // Second half of the acceptance: with load shedding on, the run
        // returns to its pre-outage peak within a bounded number of
        // epochs of the rack coming back.
        let report = quick_report();
        let shed = report
            .recovery
            .iter()
            .find(|r| r.admission == "load_shed")
            .expect("load_shed row");
        assert!(shed.shed_fraction > 0.0, "the shed cap must bind during the outage");
        let recovered = shed.recovery_epochs.expect("load_shed run must recover");
        assert!(recovered <= 30, "recovery took {recovered} epochs (bound 30)");
        // Admitting everything is never *faster* to recover than
        // shedding (it may tie if the backlog drains within one epoch).
        let none = report.recovery.iter().find(|r| r.admission == "none").unwrap();
        assert_eq!(none.shed_fraction, 0.0);
        if let Some(none_rec) = none.recovery_epochs {
            assert!(none_rec >= recovered, "open admission recovered faster than shedding");
        }
    }

    #[test]
    fn bench_snapshot_is_wall_clock_free_and_stable() {
        let report = quick_report();
        let json = report.to_bench_json();
        for banned in ["secs", "_ns", "rss", "bytes", "per_sec"] {
            assert!(!json.contains(banned), "wall-clock-ish key {banned:?} in {json}");
        }
        // Parses as JSON and round-trips deterministically.
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(v.as_object().is_some());
        assert_eq!(json, quick_report().to_bench_json());
        // Shard counts do not disturb the snapshot.
        let sharded = run(&Config { shards: 4, ..Config::quick() });
        assert_eq!(sharded.to_bench_json(), json);
    }
}
