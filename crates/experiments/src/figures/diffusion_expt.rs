//! **A5 — footnote-1 diffusion**: how fast the resources' average-load
//! estimates converge, per graph family.
//!
//! The paper assumes the threshold's `W/n` term is obtainable by running
//! continuous diffusion for mixing-time many steps. This experiment starts
//! from the adversarial hotspot load vector (all weight on node 0),
//! measures the steps to reach 1% relative error per Table-1 family, and
//! reports the ratio to the measured Lemma-2 mixing time — confirming the
//! footnote's "mixing time number of steps" claim.

use tlb_core::diffusion::{estimate_average_to_tolerance, DiffusionKind};
use tlb_graphs::generators::Family;
use tlb_walks::mixing;
use tlb_walks::spectral::spectral_gap_power;
use tlb_walks::TransitionMatrix;

use crate::figures::table1::build_family;
use crate::output::Table;

/// Configuration for the diffusion experiment.
#[derive(Debug, Clone)]
pub struct Config {
    /// Approximate nodes per family.
    pub size: usize,
    /// Relative error target (fraction of the true average).
    pub rel_tol: f64,
    /// Step cap.
    pub max_steps: usize,
    /// Seed for the randomized families.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config { size: 256, rel_tol: 0.01, max_steps: 2_000_000, seed: 0xA5 }
    }
}

impl Config {
    /// Reduced configuration for smoke tests and benches.
    pub fn quick() -> Self {
        Config { size: 64, max_steps: 200_000, ..Default::default() }
    }
}

/// Run the experiment. Columns: family, n, steps_to_tol, tau_lemma2,
/// steps_over_tau.
pub fn run(cfg: &Config) -> Table {
    let mut table = Table::new(
        "diffusion",
        format!(
            "A5/footnote 1: diffusion steps to {}% error vs mixing time (size~{})",
            cfg.rel_tol * 100.0,
            cfg.size
        ),
        &["family", "n", "steps_to_tol", "tau_lemma2", "steps_over_tau"],
    );
    for family in Family::ALL {
        let (g, kind) = build_family(family, cfg.size, cfg.seed);
        let n = g.num_nodes();
        // Hotspot initial loads: everything on node 0; average = 1.
        let mut init = vec![0.0; n];
        init[0] = n as f64;
        // Damped diffusion: convergent on every family (the pure
        // max-degree chain is periodic on the bipartite ones).
        let (_, steps) = estimate_average_to_tolerance(
            &g,
            &init,
            cfg.rel_tol,
            cfg.max_steps,
            DiffusionKind::Damped,
        );
        let p = TransitionMatrix::build(&g, kind);
        let gap = spectral_gap_power(&p, &g, 1e-10, 100_000);
        let tau = mixing::lemma2_mixing_time(n, &gap).unwrap_or(u64::MAX) as f64;
        table.push_row(vec![
            family.name().to_string(),
            n.to_string(),
            steps.to_string(),
            format!("{tau:.1}"),
            format!("{:.3}", steps as f64 / tau),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_families_converge_within_cap() {
        let cfg = Config::quick();
        let t = run(&cfg);
        assert_eq!(t.rows.len(), Family::ALL.len());
        for (row, steps) in t.rows.iter().zip(t.column_f64("steps_to_tol")) {
            assert!((steps as usize) < cfg.max_steps, "family {} did not converge", row[0]);
        }
    }

    #[test]
    fn diffusion_steps_track_mixing_time() {
        // Steps/tau should be O(1)-ish: never more than a few multiples of
        // the Lemma-2 bound (which is itself conservative).
        let cfg = Config::quick();
        let t = run(&cfg);
        for ratio in t.column_f64("steps_over_tau") {
            assert!(ratio < 5.0, "diffusion needed {ratio}x the mixing time");
        }
    }
}
