//! **M1 — protocol matrix**: any protocol × any graph × any arrival
//! scenario, through one generic harness path.
//!
//! The cross-product no pre-trait layer could express: all three paper
//! protocols (resource-, user-controlled, mixed) *and* the related-work
//! baselines (`Greedy[d]`, `(1+β)`, sequential/parallel threshold-retry)
//! run through [`harness::run_protocol_sweep`] over every configured
//! graph family and arrival scenario (initial placement × weight
//! distribution), as **one** self-scheduled pool batch. Every cell
//! reports balancing rounds, migration volume, and completion rate
//! against the same threshold policy — the apples-to-apples comparison
//! the shared round engine exists for.
//!
//! The driver persists `protocol_matrix.{csv,json}`; CI smoke-runs it
//! under `RAYON_NUM_THREADS=1` and `4`, requires byte-identical JSON, and
//! uploads the snapshot as the `BENCH_matrix` artifact.

use tlb_baselines::{BaselineConfig, BaselineRule};
use tlb_core::mixed_protocol::MixedConfig;
use tlb_core::placement::Placement;
use tlb_core::protocol::ProtocolKind;
use tlb_core::resource_protocol::ResourceControlledConfig;
use tlb_core::threshold::ThresholdPolicy;
use tlb_core::user_protocol::UserControlledConfig;
use tlb_core::weights::WeightSpec;
use tlb_graphs::generators::Family;
use tlb_obs::{ObsReport, Registry};

use crate::figures::table1::build_family;
use crate::harness::{self, MatrixProtocol, ProtocolPoint};
use crate::output::Table;
use crate::stats::Summary;

/// Configuration of the protocol matrix.
#[derive(Debug, Clone)]
pub struct Config {
    /// Approximate graph size per family.
    pub size: usize,
    /// Tasks per resource (`m = tasks_per_node · n`).
    pub tasks_per_node: usize,
    /// Graph families swept.
    pub families: Vec<Family>,
    /// Arrival scenarios swept (placement label, placement): where the
    /// workload sits before rebalancing starts.
    pub scenarios: Vec<Scenario>,
    /// Weight workloads swept (label, heavy-task cap — `1.0` = uniform).
    pub pareto: bool,
    /// Threshold slack shared by every cell.
    pub epsilon: f64,
    /// Safety cap on rounds (cells that hit it report `completed < 1`).
    pub max_rounds: u64,
    /// Trials per cell.
    pub trials: usize,
    /// Base seed.
    pub seed: u64,
}

/// An arrival scenario: how the workload lands before rebalancing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scenario {
    /// Everything on resource 0 (the adversarial hotspot of Section 7).
    Hotspot,
    /// Uniformly random initial placement (a scattered arrival wave).
    Scattered,
}

impl Scenario {
    /// Report/CSV key.
    pub fn label(&self) -> &'static str {
        match self {
            Scenario::Hotspot => "hotspot",
            Scenario::Scattered => "scattered",
        }
    }

    fn placement(&self) -> Placement {
        match self {
            Scenario::Hotspot => Placement::AllOnOne(0),
            Scenario::Scattered => Placement::UniformRandom,
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config {
            size: 128,
            tasks_per_node: 10,
            families: vec![Family::Complete, Family::RegularExpander, Family::Grid],
            scenarios: vec![Scenario::Hotspot, Scenario::Scattered],
            pareto: true,
            epsilon: 0.2,
            max_rounds: 100_000,
            trials: 50,
            seed: 0xA9,
        }
    }
}

impl Config {
    /// Reduced configuration for smoke tests and the CI reproducibility
    /// gate.
    pub fn quick() -> Self {
        Config {
            size: 32,
            families: vec![Family::Complete, Family::Grid],
            pareto: false,
            trials: 5,
            ..Default::default()
        }
    }

    /// Paper-fidelity configuration: the Section-7 trial count (every
    /// cell averaged over 1000 independent trials).
    pub fn full() -> Self {
        Config { trials: 1000, ..Default::default() }
    }
}

/// The protocol roster every matrix run covers: the three paper
/// protocols plus four baseline rules, all against the same threshold
/// policy and round cap.
fn roster(
    threshold: ThresholdPolicy,
    max_rounds: u64,
    walk: tlb_walks::WalkKind,
) -> Vec<MatrixProtocol> {
    let base = |rule| {
        MatrixProtocol::Baseline(BaselineConfig {
            threshold,
            rule,
            max_rounds,
            ..Default::default()
        })
    };
    vec![
        MatrixProtocol::Core(ProtocolKind::Resource(ResourceControlledConfig {
            threshold,
            walk,
            max_rounds,
            ..Default::default()
        })),
        MatrixProtocol::Core(ProtocolKind::User(UserControlledConfig {
            threshold,
            max_rounds,
            ..Default::default()
        })),
        MatrixProtocol::Core(ProtocolKind::Mixed(MixedConfig {
            threshold,
            walk,
            max_rounds,
            ..Default::default()
        })),
        base(BaselineRule::Greedy { d: 2 }),
        base(BaselineRule::OnePlusBeta { beta: 0.5 }),
        base(BaselineRule::SequentialThreshold { retries: 4 }),
        base(BaselineRule::ParallelThreshold),
    ]
}

/// Run the matrix. Columns: protocol, family, scenario, workload, n, m,
/// rounds_mean, rounds_ci95, migrations_mean, completed_fraction.
pub fn run(cfg: &Config) -> Table {
    run_obs(cfg).0
}

/// [`run`], also returning the sweep's observability report: the
/// `counters` subtree aggregates deterministic per-cell totals (rounds,
/// migrations, completed trials — bit-identical across thread counts),
/// `timings` carries the sweep wall time, and `exec` the rayon pool
/// deltas the sweep caused.
pub fn run_obs(cfg: &Config) -> (Table, ObsReport) {
    let reg = Registry::new();
    let pool_base = rayon::pool_stats();
    let t_sweep = std::time::Instant::now();
    let mut table = Table::new(
        "protocol_matrix",
        format!(
            "M1: every protocol x graph x arrival scenario through the generic harness (size~{}, eps={}, {} trials)",
            cfg.size, cfg.epsilon, cfg.trials
        ),
        &[
            "protocol",
            "family",
            "scenario",
            "workload",
            "n",
            "m",
            "rounds_mean",
            "rounds_ci95",
            "migrations_mean",
            "completed_fraction",
        ],
    );
    let threshold = ThresholdPolicy::AboveAverage { epsilon: cfg.epsilon };
    // Build every (family × scenario × workload × protocol) cell. The
    // per-cell seed mixes the cell's coordinates so no two cells share a
    // trial-seed stream.
    struct Cell {
        family: Family,
        scenario: Scenario,
        workload: &'static str,
        n: usize,
        m: usize,
        point: ProtocolPoint,
    }
    let mut cells: Vec<Cell> = Vec::new();
    for (fi, &family) in cfg.families.iter().enumerate() {
        let (g, walk) = build_family(family, cfg.size, cfg.seed);
        let n = g.num_nodes();
        let m = n * cfg.tasks_per_node;
        let mut workloads: Vec<(&'static str, WeightSpec)> =
            vec![("uniform", WeightSpec::Uniform { m })];
        if cfg.pareto {
            workloads.push(("pareto", WeightSpec::ParetoTruncated { m, alpha: 1.5, cap: 32.0 }));
        }
        for (si, &scenario) in cfg.scenarios.iter().enumerate() {
            for (wi, (wname, spec)) in workloads.iter().enumerate() {
                for (pi, protocol) in
                    roster(threshold, cfg.max_rounds, walk).into_iter().enumerate()
                {
                    cells.push(Cell {
                        family,
                        scenario,
                        workload: wname,
                        n,
                        m,
                        point: ProtocolPoint {
                            graph: g.clone(),
                            weights: spec.clone(),
                            placement: scenario.placement(),
                            protocol,
                            seed: cfg.seed
                                ^ ((fi as u64) << 48)
                                ^ ((si as u64) << 40)
                                ^ ((wi as u64) << 32)
                                ^ ((pi as u64) << 24),
                        },
                    });
                }
            }
        }
    }
    let points: Vec<ProtocolPoint> = cells.iter().map(|c| c.point.clone()).collect();
    let results = harness::run_protocol_sweep(&points, cfg.trials);
    for (cell, outcomes) in cells.iter().zip(&results) {
        // Deterministic sweep totals: u64 sums over outcomes, identical
        // no matter how the pool scheduled the trials.
        reg.add("matrix.cells", 1);
        reg.add("matrix.trials", outcomes.len() as u64);
        reg.add("matrix.rounds", outcomes.iter().map(|o| o.rounds).sum());
        reg.add("matrix.migrations", outcomes.iter().map(|o| o.migrations).sum());
        reg.add("matrix.completed_trials", outcomes.iter().filter(|o| o.completed).count() as u64);
        let rounds: Vec<f64> = outcomes.iter().map(|o| o.rounds as f64).collect();
        let migs: Vec<f64> = outcomes.iter().map(|o| o.migrations as f64).collect();
        let completed =
            outcomes.iter().filter(|o| o.completed).count() as f64 / outcomes.len() as f64;
        let rs = Summary::of(&rounds);
        let ms = Summary::of(&migs);
        table.push_row(vec![
            cell.point.protocol.label(),
            cell.family.name().to_string(),
            cell.scenario.label().to_string(),
            cell.workload.to_string(),
            cell.n.to_string(),
            cell.m.to_string(),
            format!("{:.2}", rs.mean),
            format!("{:.2}", rs.ci95),
            format!("{:.0}", ms.mean),
            format!("{completed:.2}"),
        ]);
    }
    reg.record_ns("matrix.sweep_ns", t_sweep.elapsed().as_nanos() as u64);
    let pool = rayon::pool_stats();
    reg.set_exec("pool.threads", pool.threads as u64);
    reg.set_exec("pool.batches", pool.batches.saturating_sub(pool_base.batches));
    reg.set_exec(
        "pool.chunks_claimed",
        pool.chunks_claimed.saturating_sub(pool_base.chunks_claimed),
    );
    (table, reg.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_matrix_covers_every_cell() {
        let cfg = Config::quick();
        let t = run(&cfg);
        // 7 protocols × 2 families × 2 scenarios × 1 workload.
        assert_eq!(t.rows.len(), 7 * 2 * 2);
        // All three paper protocols and all four baselines appear.
        for label in [
            "resource",
            "user",
            "mixed",
            "greedy2",
            "one_plus_beta",
            "seq_threshold",
            "par_threshold",
        ] {
            assert!(t.rows.iter().any(|r| r[0] == label), "missing protocol {label}");
        }
        for frac in t.column_f64("completed_fraction") {
            assert!(frac > 0.0, "some protocol never completed");
        }
    }

    #[test]
    fn matrix_runs_are_deterministic() {
        let cfg = Config::quick();
        assert_eq!(run(&cfg), run(&cfg));
    }

    #[test]
    fn obs_counters_aggregate_the_sweep_deterministically() {
        let cfg = Config::quick();
        let (table, obs) = run_obs(&cfg);
        assert_eq!(obs.counters["matrix.cells"], table.rows.len() as u64);
        assert_eq!(obs.counters["matrix.trials"], (table.rows.len() * cfg.trials) as u64);
        assert!(obs.counters["matrix.rounds"] > 0);
        assert!(obs.counters["matrix.migrations"] > 0);
        assert!(obs.counters["matrix.completed_trials"] <= obs.counters["matrix.trials"]);
        assert!(obs.timings.contains_key("matrix.sweep_ns"));
        // The deterministic subtree is byte-stable run to run; the table
        // itself must be unchanged by the instrumentation.
        let (again_table, again) = run_obs(&cfg);
        assert_eq!(again_table, table);
        assert_eq!(again.counters_json(), obs.counters_json());
    }

    #[test]
    fn hotspot_is_no_easier_than_scattered_for_the_resource_protocol() {
        let cfg = Config::quick();
        let t = run(&cfg);
        let mean = |scenario: &str| -> f64 {
            let rows: Vec<f64> = t
                .rows
                .iter()
                .filter(|r| r[0] == "resource" && r[2] == scenario)
                .map(|r| r[6].parse::<f64>().unwrap())
                .collect();
            rows.iter().sum::<f64>() / rows.len() as f64
        };
        assert!(
            mean("hotspot") >= mean("scattered"),
            "hotspot {} vs scattered {}",
            mean("hotspot"),
            mean("scattered")
        );
    }
}
