//! **A2 — Observation 8**: the lower-bound family for tight thresholds.
//!
//! The lollipop graph (clique `K_{n−1}` plus a pendant node `u` attached by
//! `k` edges) has `H(G) = Θ(n²/k)`; Observation 8 shows the
//! resource-controlled protocol needs `Ω(H(G)·log m)` rounds on it with
//! tight thresholds, matching Theorem 7's upper bound.
//!
//! The construction must *saturate* the clique: every clique node sits at
//! exactly the threshold `T = W/n + 2·w_max`, so no clique node can accept
//! a single additional task, and the surplus parked on one clique node can
//! only drain into the pendant node — which a random walk takes `Θ(n²/k)`
//! steps to hit. Concretely (unit tasks): `m = W = 3n²`, clique nodes hold
//! `3n + 2 = T` tasks each, and the surplus `s = n + 2` sits on clique
//! node 0.
//!
//! The experiment sweeps `k`, measures the exact `H(G)` on our walk
//! substrate, and reports `rounds / (H·ln m)` — which stays roughly
//! constant while `H` itself varies by an order of magnitude.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_core::placement::Placement;
use tlb_core::resource_protocol::{run_resource_controlled, ResourceControlledConfig};
use tlb_core::task::TaskSet;
use tlb_core::threshold::ThresholdPolicy;
use tlb_graphs::generators::lollipop;
use tlb_graphs::NodeId;
use tlb_walks::{hitting, TransitionMatrix, WalkKind};

use crate::harness;
use crate::output::Table;
use crate::stats::Summary;

/// Configuration for the Observation-8 experiment.
#[derive(Debug, Clone)]
pub struct Config {
    /// Total nodes `n` (clique has `n − 1`). The workload is `m = 3n²`
    /// unit tasks.
    pub n: usize,
    /// Pendant attachment counts `k` to sweep.
    pub ks: Vec<usize>,
    /// Trials per point.
    pub trials: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config { n: 48, ks: vec![1, 2, 4, 8, 16, 32], trials: 50, seed: 0xA2 }
    }
}

impl Config {
    /// Reduced configuration for smoke tests and benches.
    pub fn quick() -> Self {
        Config { n: 20, ks: vec![1, 4, 16], trials: 10, ..Default::default() }
    }

    /// Paper-fidelity configuration: the Section-7 trial count (every
    /// data point averaged over 1000 independent trials).
    pub fn full() -> Self {
        Config { trials: 1000, ..Default::default() }
    }
}

/// The Observation-8 saturating workload for a lollipop on `n` nodes:
/// `3n²` unit tasks placed so every clique node holds exactly
/// `T = 3n + 2` of them, the surplus `n + 2` sits on clique node 0, and
/// the pendant node `n−1` starts empty.
///
/// Returns `(tasks, placement)`; with `ThresholdPolicy::TightResource`
/// the threshold computes to exactly `3n + 2`.
pub fn workload(n: usize) -> (TaskSet, Placement) {
    assert!(n >= 3, "need a non-degenerate lollipop");
    let m = 3 * n * n;
    let clique_load = 3 * n + 2; // == W/n + 2 w_max for W = 3n², w_max = 1
    let surplus = n + 2;
    debug_assert_eq!((n - 1) * clique_load + surplus, m, "construction must account for all tasks");
    let mut locs: Vec<NodeId> = Vec::with_capacity(m);
    for node in 0..(n - 1) {
        locs.extend(std::iter::repeat_n(node as NodeId, clique_load));
    }
    locs.extend(std::iter::repeat_n(0 as NodeId, surplus));
    (TaskSet::uniform(m), Placement::Explicit(locs))
}

/// Run the sweep. Columns: k, H_exact, rounds_mean, rounds_ci95, ratio
/// (= rounds / (H · ln m)).
///
/// All `k` points run as **one** pool batch through
/// [`harness::run_sweep`] — the slow-mixing `k = 1` point costs an order
/// of magnitude more than `k = 32`, exactly the straggler shape
/// whole-sweep scheduling wins on. Per-point seeds match the old
/// per-point loop, so results are bit-identical to it.
pub fn run(cfg: &Config) -> Table {
    let mut table = Table::new(
        "obs8_lower_bound",
        format!(
            "A2/Observation 8: tight-threshold rounds on the saturated lollipop(n={}, k) vs H(G) log m ({} trials)",
            cfg.n, cfg.trials
        ),
        &["k", "n", "m", "H_exact", "rounds_mean", "rounds_ci95", "ratio"],
    );
    let (tasks, placement) = workload(cfg.n);
    let m = tasks.len();
    let proto = ResourceControlledConfig {
        threshold: ThresholdPolicy::TightResource,
        ..Default::default()
    };
    // Per-k substrate (graph build + exact hitting time), prepared before
    // the single flattened trial batch.
    let points: Vec<(usize, tlb_graphs::Graph, f64)> = cfg
        .ks
        .iter()
        .map(|&k| {
            let g = lollipop(cfg.n, k).expect("valid lollipop parameters");
            let p = TransitionMatrix::build(&g, WalkKind::MaxDegree);
            let h = hitting::max_hitting_time_exact(&p);
            (k, g, h)
        })
        .collect();
    let seeds: Vec<u64> = points.iter().map(|&(k, _, _)| cfg.seed ^ (k as u64) << 16).collect();
    let results = harness::run_sweep(&seeds, cfg.trials, |i, s| {
        let mut rng = SmallRng::seed_from_u64(s);
        run_resource_controlled(&points[i].1, &tasks, placement.clone(), &proto, &mut rng).rounds
            as f64
    });
    for (&(k, _, h), samples) in points.iter().zip(&results) {
        let s = Summary::of(samples);
        table.push_row(vec![
            k.to_string(),
            cfg.n.to_string(),
            m.to_string(),
            format!("{h:.1}"),
            format!("{:.2}", s.mean),
            format!("{:.2}", s.ci95),
            format!("{:.5}", s.mean / (h * (m as f64).ln())),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hitting_time_decreases_with_k() {
        // H = Θ(n²/k): doubling k should roughly halve H.
        let n = 24;
        let h_of = |k: usize| {
            let g = lollipop(n, k).unwrap();
            let p = TransitionMatrix::build(&g, WalkKind::MaxDegree);
            hitting::max_hitting_time_exact(&p)
        };
        let h1 = h_of(1);
        let h4 = h_of(4);
        let h16 = h_of(16);
        assert!(h1 > h4 && h4 > h16);
        assert!(h1 / h4 > 2.0, "H(k=1)/H(k=4) = {}", h1 / h4);
    }

    #[test]
    fn workload_saturates_every_clique_node() {
        let n = 12;
        let (tasks, placement) = workload(n);
        assert_eq!(tasks.len(), 3 * n * n);
        let t = ThresholdPolicy::TightResource.value(tasks.total_weight(), n, tasks.w_max());
        assert!((t - (3 * n + 2) as f64).abs() < 1e-9, "threshold {t}");
        if let Placement::Explicit(locs) = &placement {
            let mut loads = vec![0usize; n];
            for &l in locs {
                loads[l as usize] += 1;
            }
            // pendant empty, node 0 over threshold, others exactly at it
            assert_eq!(loads[n - 1], 0);
            assert_eq!(loads[0], (3 * n + 2) + (n + 2));
            for &l in &loads[1..n - 1] {
                assert_eq!(l, 3 * n + 2);
            }
        } else {
            panic!("expected explicit placement");
        }
    }

    #[test]
    fn quick_sweep_has_finite_ratios_and_h_scaling() {
        let cfg = Config::quick();
        let t = run(&cfg);
        assert_eq!(t.rows.len(), cfg.ks.len());
        for ratio in t.column_f64("ratio") {
            assert!(ratio.is_finite() && ratio > 0.0);
        }
        // rounds must *grow* as k shrinks (H grows): first row (k=1)
        // slower than last (k=16).
        let rounds = t.column_f64("rounds_mean");
        assert!(
            rounds[0] > 2.0 * rounds[rounds.len() - 1],
            "k=1 should be much slower than k=16: {rounds:?}"
        );
    }
}
