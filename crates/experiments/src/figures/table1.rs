//! **T1 — Table 1**: mixing and hitting times of the five graph families.
//!
//! The paper cites Aldous–Fill asymptotics (complete `O(1)/O(n)`, regular
//! expander `O(log n)/O(n)`, Erdős–Rényi `O(log n)/O(n)`, hypercube
//! `O(log n log log n)/O(n)`, grid `O(n)/O(n log n)`). This experiment
//! *measures* both quantities on our own substrate across a size sweep so
//! the shapes can be verified: the spectral gap / Lemma-2 mixing time, the
//! empirical total-variation 1/4-mixing time, and the exact maximum
//! hitting time (fundamental matrix) or a Monte-Carlo estimate when `n` is
//! too large to factor.
//!
//! Bipartite regular families (hypercube, even torus) are measured under
//! the lazy walk — the pure max-degree walk is periodic there and has no
//! mixing time; the lazy chain keeps the uniform stationary distribution
//! the paper's analysis needs (footnote: any walk with uniform π
//! qualifies) at the cost of a factor ≤ 2 in both quantities.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_graphs::generators::{self, Family};
use tlb_graphs::Graph;
use tlb_walks::hitting;
use tlb_walks::mixing;
use tlb_walks::spectral::spectral_gap_power;
use tlb_walks::transition::{TransitionMatrix, WalkKind};

use crate::output::Table;

/// Configuration of the Table-1 sweep.
#[derive(Debug, Clone)]
pub struct Config {
    /// Sizes (approximate node counts) per family. Hypercube rounds to the
    /// next power of two, grid to the next perfect square.
    pub sizes: Vec<usize>,
    /// Exact hitting times use the `O(n³)` fundamental matrix up to this
    /// size; larger graphs fall back to Monte Carlo.
    pub exact_hitting_cap: usize,
    /// Trials per pair for the Monte-Carlo fallback.
    pub mc_trials: usize,
    /// RNG seed for the randomized generators.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config { sizes: vec![64, 128, 256, 512], exact_hitting_cap: 600, mc_trials: 400, seed: 1 }
    }
}

impl Config {
    /// Reduced sweep for smoke tests and benches.
    pub fn quick() -> Self {
        Config { sizes: vec![32, 64], exact_hitting_cap: 128, mc_trials: 50, seed: 1 }
    }
}

/// Instantiate a family at (approximately) `size` nodes. Returns the graph
/// and the walk kind used for its mixing measurement.
pub fn build_family(family: Family, size: usize, seed: u64) -> (Graph, WalkKind) {
    let mut rng = SmallRng::seed_from_u64(seed);
    match family {
        Family::Complete => (generators::complete(size), WalkKind::MaxDegree),
        Family::RegularExpander => {
            let n = if size % 2 == 1 { size + 1 } else { size };
            (generators::random_regular(n, 3, &mut rng).expect("feasible"), WalkKind::MaxDegree)
        }
        Family::ErdosRenyi => {
            let p = 2.0 * (size as f64).ln() / size as f64;
            (
                generators::erdos_renyi_connected(size, p, 200, &mut rng).expect("above threshold"),
                WalkKind::MaxDegree,
            )
        }
        Family::Hypercube => {
            let dim = (size as f64).log2().round().max(1.0) as u32;
            (generators::hypercube(dim), WalkKind::Lazy)
        }
        Family::Grid => {
            let side = (size as f64).sqrt().round().max(2.0) as usize;
            (generators::torus2d(side, side), WalkKind::Lazy)
        }
    }
}

/// One measured row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Family measured.
    pub family: Family,
    /// Actual node count.
    pub n: usize,
    /// Spectral gap µ.
    pub gap: f64,
    /// Lemma-2 mixing time `4 ln n / µ`.
    pub tau_lemma2: f64,
    /// Empirical TV 1/4-mixing time.
    pub tau_tv: Option<usize>,
    /// Maximum hitting time (exact if `n ≤ cap`, else Monte Carlo).
    pub hitting: f64,
    /// Whether `hitting` is exact.
    pub hitting_exact: bool,
}

/// Measure one family at one size.
pub fn measure(family: Family, size: usize, cfg: &Config) -> Row {
    let (g, kind) = build_family(family, size, cfg.seed);
    let n = g.num_nodes();
    let p = TransitionMatrix::build(&g, kind);
    let sg = spectral_gap_power(&p, &g, 1e-10, 100_000);
    let gap = sg.gap;
    let tau_lemma2 = mixing::lemma2_mixing_time(n, &sg).unwrap_or(u64::MAX) as f64;
    let tau_tv = mixing::tv_mixing_time(&p, &g, 0.25, (tau_lemma2 as usize).min(200_000) + 10);
    let (hitting, hitting_exact) = if n <= cfg.exact_hitting_cap {
        (hitting::max_hitting_time_exact(&p), true)
    } else {
        // Cap walks at a generous multiple of the asymptotic worst case.
        let cap = 50 * n * ((n as f64).ln().ceil() as usize + 1);
        (hitting::max_hitting_time_mc(&g, kind, 16, cfg.mc_trials, cap, cfg.seed), false)
    };
    Row { family, n, gap, tau_lemma2, tau_tv, hitting, hitting_exact }
}

/// Run the full sweep and format the paper-shaped table.
pub fn run(cfg: &Config) -> Table {
    let mut table = Table::new(
        "table1",
        "Table 1: measured mixing & hitting times per graph family (walk: max-degree; lazy on bipartite families)",
        &[
            "family",
            "n",
            "spectral_gap",
            "tau_lemma2",
            "tau_tv_quarter",
            "max_hitting",
            "hitting_mode",
            "theory_mixing",
            "theory_hitting",
        ],
    );
    for family in Family::ALL {
        for &size in &cfg.sizes {
            let row = measure(family, size, cfg);
            let (tm, th) = theory(family);
            table.push_row(vec![
                family.name().to_string(),
                row.n.to_string(),
                format!("{:.6}", row.gap),
                format!("{:.1}", row.tau_lemma2),
                row.tau_tv.map_or("-".into(), |t| t.to_string()),
                format!("{:.1}", row.hitting),
                if row.hitting_exact { "exact".into() } else { "monte-carlo".into() },
                tm.to_string(),
                th.to_string(),
            ]);
        }
    }
    table
}

/// The paper's Table-1 asymptotics for a family.
pub fn theory(family: Family) -> (&'static str, &'static str) {
    match family {
        Family::Complete => ("O(1)", "O(n)"),
        Family::RegularExpander => ("O(log n)", "O(n)"),
        Family::ErdosRenyi => ("O(log n)", "O(n)"),
        Family::Hypercube => ("O(log n loglog n)", "O(n)"),
        Family::Grid => ("O(n)", "O(n log n)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_family_row_matches_closed_forms() {
        let cfg = Config::quick();
        let row = measure(Family::Complete, 32, &cfg);
        assert_eq!(row.n, 32);
        // gap = 1 - 1/(n-1)
        assert!((row.gap - (1.0 - 1.0 / 31.0)).abs() < 1e-6);
        assert!(row.hitting_exact);
        assert!((row.hitting - 31.0).abs() < 1e-6);
        assert!(row.tau_tv.unwrap() <= 4);
    }

    #[test]
    fn grid_mixing_grows_linearly_expander_logarithmically() {
        // At a single small size the absolute values are comparable; the
        // Table-1 separation is in the *growth rate*: grid τ is Θ(n)
        // (ratio ≈ 4 from n=64 to n=256) while the expander's is Θ(log n)
        // (ratio ≈ 1.2).
        let cfg = Config::quick();
        let grid_small = measure(Family::Grid, 64, &cfg);
        let grid_large = measure(Family::Grid, 256, &cfg);
        let exp_small = measure(Family::RegularExpander, 64, &cfg);
        let exp_large = measure(Family::RegularExpander, 256, &cfg);
        let grid_growth = grid_large.tau_lemma2 / grid_small.tau_lemma2;
        let exp_growth = exp_large.tau_lemma2 / exp_small.tau_lemma2;
        assert!(
            grid_growth > 2.0 * exp_growth,
            "grid growth {grid_growth:.2} vs expander growth {exp_growth:.2}"
        );
        assert!(grid_growth > 2.5, "grid tau should scale ~linearly, got {grid_growth:.2}");
    }

    #[test]
    fn full_quick_table_has_all_rows() {
        let cfg = Config::quick();
        let t = run(&cfg);
        assert_eq!(t.rows.len(), Family::ALL.len() * cfg.sizes.len());
        // every row's hitting time is positive
        for h in t.column_f64("max_hitting") {
            assert!(h > 0.0);
        }
    }

    #[test]
    fn hypercube_size_rounds_to_power_of_two() {
        let (g, kind) = build_family(Family::Hypercube, 100, 1);
        assert_eq!(g.num_nodes(), 128);
        assert_eq!(kind, WalkKind::Lazy);
    }
}
