//! **A6 — Lemma 10 drift vs measurement**: the per-round relative decay of
//! the user-controlled potential.
//!
//! Lemma 10 proves `E[ΔΦ | Φ] ≥ δ·Φ` with
//! `δ = α·ε/(2(1+ε))·(w_min/w_max)` (at the analysis α). This experiment
//! tracks the potential series of many runs, estimates the empirical decay
//! rate `1 − Φ(t+1)/Φ(t)` averaged over rounds with `Φ(t) > 0`, and
//! compares it to the analytic `δ` — the measured decay should dominate
//! the bound (the analysis is a lower bound on decay).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_core::drift::lemma10_delta;
use tlb_core::placement::Placement;
use tlb_core::protocol::EngineStats;
use tlb_core::threshold::ThresholdPolicy;
use tlb_core::user_protocol::{run_user_controlled_with_stats, UserControlledConfig};
use tlb_core::weights::WeightSpec;
use tlb_obs::{ObsReport, Registry};

use crate::harness;
use crate::output::Table;
use crate::stats::Summary;

/// Configuration for the potential-decay experiment.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of resources.
    pub n: usize,
    /// Number of tasks.
    pub m: usize,
    /// Heavy weights to sweep (single heavy task).
    pub w_maxes: Vec<f64>,
    /// Threshold slack.
    pub epsilon: f64,
    /// Migration damping.
    pub alpha: f64,
    /// Trials per point.
    pub trials: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n: 500,
            m: 2000,
            w_maxes: vec![1.0, 4.0, 16.0, 64.0],
            epsilon: 0.2,
            alpha: 1.0,
            trials: 100,
            seed: 0xA6,
        }
    }
}

impl Config {
    /// Reduced configuration for smoke tests and benches.
    pub fn quick() -> Self {
        Config { n: 100, m: 500, w_maxes: vec![1.0, 16.0], trials: 15, ..Default::default() }
    }

    /// Paper-fidelity configuration: the Section-7 trial count (every
    /// data point averaged over 1000 independent trials).
    pub fn full() -> Self {
        Config { trials: 1000, ..Default::default() }
    }
}

/// Mean per-round relative potential decay of one run's series.
pub fn mean_decay(series: &[f64]) -> Option<f64> {
    let mut decays = Vec::new();
    for w in series.windows(2) {
        if w[0] > 0.0 {
            decays.push(1.0 - w[1] / w[0]);
        }
    }
    if decays.is_empty() {
        None
    } else {
        Some(decays.iter().sum::<f64>() / decays.len() as f64)
    }
}

/// Run the sweep. Columns: w_max, measured_decay_mean, measured_decay_ci95,
/// lemma10_delta_at_alpha (analytic, *at the swept α*), ratio.
///
/// All `w_max` points run as **one** pool batch through
/// [`harness::run_sweep`]; per-point seeds match the old per-point loop,
/// so results are bit-identical to it at any thread count.
pub fn run(cfg: &Config) -> Table {
    run_obs(cfg).0
}

/// [`run`], also returning the sweep's observability report in the
/// `protocol_matrix` shape: deterministic per-point totals and merged
/// [`EngineStats`] under the `decay.` prefix, plus the sweep wall time
/// and rayon pool deltas. The decay table itself is unchanged.
pub fn run_obs(cfg: &Config) -> (Table, ObsReport) {
    let reg = Registry::new();
    let pool_base = rayon::pool_stats();
    let t_sweep = std::time::Instant::now();
    let mut table = Table::new(
        "potential_decay",
        format!(
            "A6/Lemma 10: measured per-round potential decay vs analytic delta (n={}, m={}, alpha={}, {} trials)",
            cfg.n, cfg.m, cfg.alpha, cfg.trials
        ),
        &["w_max", "measured_decay", "decay_ci95", "lemma10_delta", "measured_over_delta"],
    );
    let proto = UserControlledConfig {
        threshold: ThresholdPolicy::AboveAverage { epsilon: cfg.epsilon },
        alpha: cfg.alpha,
        track_potential: true,
        ..Default::default()
    };
    let specs: Vec<WeightSpec> =
        cfg.w_maxes.iter().map(|&w_max| WeightSpec::figure2(cfg.m, w_max)).collect();
    let seeds: Vec<u64> =
        cfg.w_maxes.iter().map(|&w_max| cfg.seed ^ (w_max as u64) << 24).collect();
    let n = cfg.n;
    let results = harness::run_sweep_map(&seeds, cfg.trials, |i, s| {
        let mut rng = SmallRng::seed_from_u64(s);
        let tasks = specs[i].generate(&mut rng);
        let (out, stats) =
            run_user_controlled_with_stats(n, &tasks, Placement::AllOnOne(0), &proto, &mut rng);
        (mean_decay(&out.potential_series).unwrap_or(1.0), out.rounds, stats)
    });
    let mut merged = EngineStats::default();
    for (&w_max, samples) in cfg.w_maxes.iter().zip(&results) {
        reg.add("decay.points", 1);
        reg.add("decay.trials", samples.len() as u64);
        reg.add("decay.rounds", samples.iter().map(|(_, r, _)| *r).sum());
        for (_, _, stats) in samples {
            merged.merge(stats);
        }
        let decays: Vec<f64> = samples.iter().map(|(d, _, _)| *d).collect();
        let s = Summary::of(&decays);
        let delta = lemma10_delta(cfg.epsilon, cfg.alpha, w_max, 1.0);
        table.push_row(vec![
            format!("{w_max:.0}"),
            format!("{:.5}", s.mean),
            format!("{:.5}", s.ci95),
            format!("{delta:.5}"),
            format!("{:.2}", s.mean / delta),
        ]);
    }
    super::record_engine_stats(&reg, "decay", &merged);
    reg.record_ns("decay.sweep_ns", t_sweep.elapsed().as_nanos() as u64);
    let pool = rayon::pool_stats();
    reg.set_exec("pool.threads", pool.threads as u64);
    reg.set_exec("pool.batches", pool.batches.saturating_sub(pool_base.batches));
    reg.set_exec(
        "pool.chunks_claimed",
        pool.chunks_claimed.saturating_sub(pool_base.chunks_claimed),
    );
    (table, reg.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_decay_of_geometric_series() {
        let series: Vec<f64> = (0..10).map(|i| 100.0 * 0.5f64.powi(i)).collect();
        let d = mean_decay(&series).unwrap();
        assert!((d - 0.5).abs() < 1e-12);
        assert_eq!(mean_decay(&[0.0, 0.0]), None);
        assert_eq!(mean_decay(&[5.0]), None);
    }

    #[test]
    fn measured_decay_dominates_lemma10_bound() {
        // Lemma 10 is a lower bound on the decay; at alpha = 1 the real
        // decay should be comfortably above the analytic delta (which the
        // run-time bound uses with the conservative alpha).
        let cfg = Config::quick();
        let t = run(&cfg);
        for ratio in t.column_f64("measured_over_delta") {
            assert!(ratio > 1.0, "measured decay fell below Lemma-10 delta: {ratio}");
        }
    }

    #[test]
    fn decay_shrinks_with_heterogeneity() {
        let cfg = Config::quick();
        let t = run(&cfg);
        let decays = t.column_f64("measured_decay");
        assert!(decays[0] > decays[1], "uniform workload should decay faster: {decays:?}");
    }

    #[test]
    fn obs_counters_aggregate_the_sweep_deterministically() {
        let cfg = Config { trials: 3, ..Config::quick() };
        let (table, obs) = run_obs(&cfg);
        assert_eq!(obs.counters["decay.points"], table.rows.len() as u64);
        assert_eq!(obs.counters["decay.trials"], (table.rows.len() * cfg.trials) as u64);
        assert!(obs.counters["decay.rounds"] > 0);
        assert!(obs.counters["decay.uniform_jump_draws"] > 0);
        assert!(obs.timings.contains_key("decay.sweep_ns"));
        // The deterministic subtree is byte-stable run to run; the table
        // itself must be unchanged by the instrumentation.
        let (again_table, again) = run_obs(&cfg);
        assert_eq!(again_table, table);
        assert_eq!(again.counters_json(), obs.counters_json());
    }
}
