//! Regenerate the paper's Figure 1 (balancing time vs W for k heavy tasks).

use tlb_experiments::cli::Options;
use tlb_experiments::figures::figure1;

fn main() {
    let opts = Options::from_env();
    let mut cfg = if opts.quick { figure1::Config::quick() } else { figure1::Config::default() };
    if let Some(t) = opts.trials {
        cfg.trials = t;
    }
    let table = figure1::run(&cfg);
    print!("{}", table.render());
    println!("\nlog-fit per k (rounds ~ a + b ln m):");
    for (k, slope, r2) in figure1::log_fit_per_k(&cfg, &table) {
        println!("  k = {k:>3}: slope = {slope:.2}, r^2 = {r2:.4}");
    }
    let path = table.save(&opts.out_dir).expect("write results");
    eprintln!("saved {}", path.display());
}
