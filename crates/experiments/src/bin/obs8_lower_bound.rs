//! A2: Observation-8 lower-bound family (lollipop, tight thresholds).

use tlb_experiments::cli::Options;
use tlb_experiments::figures::obs8;

fn main() {
    let opts = Options::from_env();
    let mut cfg = if opts.full {
        obs8::Config::full()
    } else if opts.quick {
        obs8::Config::quick()
    } else {
        obs8::Config::default()
    };
    if let Some(t) = opts.trials {
        cfg.trials = t;
    }
    let table = obs8::run(&cfg);
    print!("{}", table.render());
    let path = table.save(&opts.out_dir).expect("write results");
    eprintln!("saved {}", path.display());
}
