//! A1: resource-controlled balancing time vs tau(G) log m (Theorem 3 shape).
//!
//! `--obs-out PATH` additionally writes the sweep's observability
//! report (deterministic counters + wall timings + pool diagnostics;
//! see `tlb-obs`). The table artifacts are byte-identical with or
//! without it.

use tlb_experiments::cli::Options;
use tlb_experiments::figures::resource_scaling;

fn main() {
    let opts = Options::from_env();
    let mut cfg = if opts.full {
        resource_scaling::Config::full()
    } else if opts.quick {
        resource_scaling::Config::quick()
    } else {
        resource_scaling::Config::default()
    };
    if let Some(t) = opts.trials {
        cfg.trials = t;
    }
    let (table, obs) = resource_scaling::run_obs(&cfg);
    print!("{}", table.render());
    let path = table.save(&opts.out_dir).expect("write results");
    eprintln!("saved {}", path.display());
    if let Some(obs_out) = &opts.obs_out {
        std::fs::write(obs_out, format!("{}\n", obs.to_json()))
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", obs_out.display()));
        eprintln!("saved {}", obs_out.display());
    }
}
