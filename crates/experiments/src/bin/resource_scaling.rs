//! A1: resource-controlled balancing time vs tau(G) log m (Theorem 3 shape).

use tlb_experiments::cli::Options;
use tlb_experiments::figures::resource_scaling;

fn main() {
    let opts = Options::from_env();
    let mut cfg = if opts.full {
        resource_scaling::Config::full()
    } else if opts.quick {
        resource_scaling::Config::quick()
    } else {
        resource_scaling::Config::default()
    };
    if let Some(t) = opts.trials {
        cfg.trials = t;
    }
    let table = resource_scaling::run(&cfg);
    print!("{}", table.render());
    let path = table.save(&opts.out_dir).expect("write results");
    eprintln!("saved {}", path.display());
}
