//! A5: footnote-1 diffusion average estimation vs mixing time.

use tlb_experiments::cli::Options;
use tlb_experiments::figures::diffusion_expt;

fn main() {
    let opts = Options::from_env();
    let cfg = if opts.quick {
        diffusion_expt::Config::quick()
    } else {
        diffusion_expt::Config::default()
    };
    let table = diffusion_expt::run(&cfg);
    print!("{}", table.render());
    let path = table.save(&opts.out_dir).expect("write results");
    eprintln!("saved {}", path.display());
}
