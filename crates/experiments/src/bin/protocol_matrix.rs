//! M1: any protocol × any graph × any arrival scenario through the
//! generic protocol harness (the `BENCH_matrix` CI artifact).
//!
//! `--obs-out PATH` additionally writes the sweep's observability
//! report (deterministic counters + wall timings + pool diagnostics;
//! see `tlb-obs`). The table artifacts are byte-identical with or
//! without it.

use tlb_experiments::cli::Options;
use tlb_experiments::figures::protocol_matrix;

fn main() {
    let opts = Options::from_env();
    let mut cfg = if opts.full {
        protocol_matrix::Config::full()
    } else if opts.quick {
        protocol_matrix::Config::quick()
    } else {
        protocol_matrix::Config::default()
    };
    if let Some(t) = opts.trials {
        cfg.trials = t;
    }
    let (table, obs) = protocol_matrix::run_obs(&cfg);
    print!("{}", table.render());
    let path = table.save(&opts.out_dir).expect("write results");
    eprintln!("saved {}", path.display());
    if let Some(obs_out) = &opts.obs_out {
        std::fs::write(obs_out, format!("{}\n", obs.to_json()))
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", obs_out.display()));
        eprintln!("saved {}", obs_out.display());
    }
}
