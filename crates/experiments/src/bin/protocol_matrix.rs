//! M1: any protocol × any graph × any arrival scenario through the
//! generic protocol harness (the `BENCH_matrix` CI artifact).

use tlb_experiments::cli::Options;
use tlb_experiments::figures::protocol_matrix;

fn main() {
    let opts = Options::from_env();
    let mut cfg = if opts.full {
        protocol_matrix::Config::full()
    } else if opts.quick {
        protocol_matrix::Config::quick()
    } else {
        protocol_matrix::Config::default()
    };
    if let Some(t) = opts.trials {
        cfg.trials = t;
    }
    let table = protocol_matrix::run(&cfg);
    print!("{}", table.render());
    let path = table.save(&opts.out_dir).expect("write results");
    eprintln!("saved {}", path.display());
}
