//! R1: the robustness sweep — adaptive adversaries vs oblivious arrival
//! streams (overload gap) and admission-control recovery from a
//! whole-domain outage (the `BENCH_adversary` CI artifact).
//!
//! Flags: `--quick` (CI scale), `--shards N` (rebalance shard count —
//! output-invariant), `--out DIR` (table artifacts), `--bench-out PATH`
//! (the deterministic `BENCH_adversary.json` snapshot: no wall-clock
//! field, byte-identical across `RAYON_NUM_THREADS` and shard counts).
//!
//! Under `--quick` the driver also enforces the acceptance properties
//! inline (the same ones `tlb_experiments::figures::adversary` pins in
//! its tests), so a CI run that produces a snapshot has already proved
//! the snapshot says what the robustness layer claims.

use std::path::PathBuf;

use tlb_experiments::figures::adversary::{self, Config};

fn main() {
    let mut cfg = Config::default();
    let mut out_dir = PathBuf::from("results");
    let mut bench_out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cfg = Config { shards: cfg.shards, ..Config::quick() },
            "--shards" => {
                cfg.shards = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--shards needs a positive integer");
            }
            "--out" => out_dir = PathBuf::from(args.next().expect("--out needs a value")),
            "--bench-out" => {
                bench_out = Some(PathBuf::from(args.next().expect("--bench-out needs a value")));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: adversary_sweep [--quick] [--shards N] [--out DIR] [--bench-out PATH]"
                );
                return;
            }
            other => panic!("unknown argument: {other}"),
        }
    }

    let report = adversary::run(&cfg);
    let table = report.table();
    print!("{}", table.render());
    let path = table.save(&out_dir).expect("write results");
    eprintln!("saved {}", path.display());

    if cfg.quick {
        // The acceptance properties, enforced at the scale CI runs.
        let adaptive = report.gap.iter().find(|r| r.adversary == "adaptive").unwrap();
        for r in report.gap.iter().filter(|r| r.oblivious) {
            assert!(
                adaptive.peak_gap > r.peak_gap,
                "adaptive peak gap {:.4} did not exceed {} at {:.4}",
                adaptive.peak_gap,
                r.adversary,
                r.peak_gap
            );
        }
        let shed = report.recovery.iter().find(|r| r.admission == "load_shed").unwrap();
        let recovered = shed.recovery_epochs.expect("load_shed run must recover");
        assert!(recovered <= 30, "load-shed recovery took {recovered} epochs (bound 30)");
        eprintln!(
            "acceptance: adaptive peak gap {:.4} beats every oblivious stream; \
             load-shed recovery in {recovered} epochs (shed {:.2}%)",
            adaptive.peak_gap,
            shed.shed_fraction * 100.0
        );
    }

    if let Some(bench_out) = bench_out {
        std::fs::write(&bench_out, report.to_bench_json())
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", bench_out.display()));
        eprintln!("saved {}", bench_out.display());
    }
}
