//! A7: the Section-8 mixed protocol vs the paper's two protocols.

use tlb_experiments::cli::Options;
use tlb_experiments::figures::mixed;

fn main() {
    let opts = Options::from_env();
    let mut cfg = if opts.quick { mixed::Config::quick() } else { mixed::Config::default() };
    if let Some(t) = opts.trials {
        cfg.trials = t;
    }
    let table = mixed::run(&cfg);
    print!("{}", table.render());
    let path = table.save(&opts.out_dir).expect("write results");
    eprintln!("saved {}", path.display());
}
