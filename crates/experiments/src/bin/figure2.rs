//! Regenerate the paper's Figure 2 (normalized balancing time vs m per w_max).

use tlb_experiments::cli::Options;
use tlb_experiments::figures::figure2;

fn main() {
    let opts = Options::from_env();
    let mut cfg = if opts.quick { figure2::Config::quick() } else { figure2::Config::default() };
    if let Some(t) = opts.trials {
        cfg.trials = t;
    }
    let table = figure2::run(&cfg);
    print!("{}", table.render());
    let (flatness, (slope, r2)) = figure2::shape_checks(&cfg, &table);
    println!("\nper-w_max flatness of rounds/log m (max/min over m):");
    for (w, ratio) in flatness {
        println!("  w_max = {w:>4}: {ratio:.2}x");
    }
    println!("plateau ~ a + b*w_max fit: slope = {slope:.4}, r^2 = {r2:.4}");
    let path = table.save(&opts.out_dir).expect("write results");
    eprintln!("saved {}", path.display());
}
