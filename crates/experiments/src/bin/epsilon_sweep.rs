//! A4: tight vs above-average thresholds for the user-controlled protocol.

use tlb_experiments::cli::Options;
use tlb_experiments::figures::epsilon_sweep;

fn main() {
    let opts = Options::from_env();
    let mut cfg = if opts.full {
        epsilon_sweep::Config::full()
    } else if opts.quick {
        epsilon_sweep::Config::quick()
    } else {
        epsilon_sweep::Config::default()
    };
    if let Some(t) = opts.trials {
        cfg.trials = t;
    }
    let table = epsilon_sweep::run(&cfg);
    print!("{}", table.render());
    let path = table.save(&opts.out_dir).expect("write results");
    eprintln!("saved {}", path.display());
}
