//! A8: related-work allocators (greedy d-choice, (1+beta), threshold
//! schemes) on the paper's weighted workloads.

use tlb_experiments::cli::Options;
use tlb_experiments::figures::related_work;

fn main() {
    let opts = Options::from_env();
    let mut cfg =
        if opts.quick { related_work::Config::quick() } else { related_work::Config::default() };
    if let Some(t) = opts.trials {
        cfg.trials = t;
    }
    let table = related_work::run(&cfg);
    print!("{}", table.render());
    println!("\ngap growth ratios (gap at largest m / smallest m):");
    for (scheme, ratio) in related_work::growth_ratios(&cfg, &table) {
        println!("  {scheme:<18} {ratio:.2}x");
    }
    let path = table.save(&opts.out_dir).expect("write results");
    eprintln!("saved {}", path.display());
}
