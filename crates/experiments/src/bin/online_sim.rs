//! Online-simulation driver: streaming arrivals + resource churn +
//! multi-tenant thresholds, producing the `BENCH_online.json` epoch-metrics
//! snapshot CI uploads alongside `BENCH_harness.json`.
//!
//! Usage: `online_sim [--quick] [--scenario NAME] [--epochs N] [--seed S]
//! [--out PATH]`
//!
//! Scenarios:
//!
//! * `steady`  — Poisson arrivals and departures in equilibrium on a
//!   complete graph; two tenants (one tight SLO, one relaxed).
//! * `churn`   — arrivals while resources fail and recover at random and
//!   a scripted rack drains mid-run; arrivals stop at 2/3 of the run so
//!   the tail is a pure convergence phase (the default).
//! * `cdn-day` — bursty flash-crowd traffic with heavy-tailed object
//!   sizes on a torus fabric.
//!
//! The report JSON contains no wall-clock fields, so two runs with the
//! same seed are byte-identical regardless of machine or thread count —
//! CI diffs `RAYON_NUM_THREADS=1` against `=4` as a reproducibility gate.

use tlb_core::threshold::ThresholdPolicy;
use tlb_graphs::generators::{complete, torus2d};
use tlb_graphs::Graph;
use tlb_sim::{
    ArrivalPlacement, ArrivalProcess, ArrivalWeights, ChurnEvent, ChurnProcess, OnlineSim,
    SimConfig, TenantSpec,
};

struct Args {
    quick: bool,
    scenario: String,
    epochs: Option<u64>,
    seed: u64,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        scenario: "churn".into(),
        epochs: None,
        seed: 2024,
        out: "BENCH_online.json".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--scenario" => args.scenario = it.next().expect("--scenario needs a name"),
            "--epochs" => {
                args.epochs = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--epochs needs a positive integer"),
                );
            }
            "--seed" => {
                args.seed =
                    it.next().and_then(|v| v.parse().ok()).expect("--seed needs an integer");
            }
            "--out" => args.out = it.next().expect("--out needs a path"),
            "--help" | "-h" => {
                eprintln!(
                    "usage: online_sim [--quick] [--scenario steady|churn|cdn-day] \
                     [--epochs N] [--seed S] [--out PATH]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    args
}

fn two_tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("latency-tier", ThresholdPolicy::Tight, 0.3),
        TenantSpec::new("batch-tier", ThresholdPolicy::AboveAverage { epsilon: 1.0 }, 0.7),
    ]
}

/// Build `(config, base graph)` for a named scenario.
fn scenario(name: &str, quick: bool, epochs: Option<u64>, seed: u64) -> (SimConfig, Graph) {
    let scale = if quick { 1 } else { 4 };
    match name {
        "steady" => {
            let cfg = SimConfig {
                name: "steady".into(),
                epochs: epochs.unwrap_or(if quick { 120 } else { 600 }),
                seed,
                arrivals: ArrivalProcess::Poisson { rate: 10.0 * scale as f64 },
                departure_prob: 0.05,
                tenants: two_tenants(),
                rounds_per_epoch: 16,
                ..Default::default()
            };
            (cfg, complete(16 * scale))
        }
        "churn" => {
            let side = 4 * scale; // torus side
            let total = epochs.unwrap_or(if quick { 150 } else { 450 });
            let n = (side * side) as u32;
            let cfg = SimConfig {
                name: "churn".into(),
                epochs: total,
                seed,
                arrivals: ArrivalProcess::Poisson { rate: 6.0 * scale as f64 },
                // The tail third of the run has no arrivals: a pure
                // convergence phase after the churn storm.
                arrival_window: Some(total * 2 / 3),
                departure_prob: 0.02,
                churn: ChurnProcess {
                    scripted: vec![
                        // A rack (one torus row) drains mid-run and
                        // returns before the arrival window closes.
                        (total / 3, ChurnEvent::DeactivateRange { from: 0, to: n / 4 }),
                        (total / 2, ChurnEvent::ActivateRange { from: 0, to: n / 4 }),
                    ],
                    random_down: 0.05,
                    random_up: 0.10,
                },
                tenants: two_tenants(),
                rounds_per_epoch: 24,
                ..Default::default()
            };
            (cfg, torus2d(side, side))
        }
        "cdn-day" => {
            let cfg = SimConfig {
                name: "cdn-day".into(),
                epochs: epochs.unwrap_or(if quick { 150 } else { 500 }),
                seed,
                arrivals: ArrivalProcess::Bursty {
                    base: 4.0 * scale as f64,
                    burst: 40.0 * scale as f64,
                    period: 50,
                    burst_len: 6,
                },
                arrival_weights: ArrivalWeights::ParetoTruncated { alpha: 1.3, cap: 32.0 },
                arrival_placement: ArrivalPlacement::Uniform,
                departure_prob: 0.04,
                tenants: two_tenants(),
                rounds_per_epoch: 24,
                ..Default::default()
            };
            (cfg, torus2d(4 * scale, 4 * scale))
        }
        other => panic!("unknown scenario {other:?} (expected steady / churn / cdn-day)"),
    }
}

fn main() {
    let args = parse_args();
    let (cfg, base) = scenario(&args.scenario, args.quick, args.epochs, args.seed);
    let epochs = cfg.epochs;
    let n = base.num_nodes();

    let started = std::time::Instant::now();
    let report = OnlineSim::new(base, cfg).run();
    let secs = started.elapsed().as_secs_f64();

    let json = report.to_json();
    std::fs::write(&args.out, &json).unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out));

    let last = report.last().expect("at least one epoch");
    println!(
        "scenario {} on {n} resources: {epochs} epochs in {secs:.2}s ({:.0} epochs/s)",
        report.scenario,
        epochs as f64 / secs
    );
    println!(
        "  arrivals {} / departures {} / protocol migrations {}",
        report.total_arrivals, report.total_departures, report.total_migrations
    );
    println!(
        "  balanced epochs {:.1}% / peak load {:.1} / final max load {:.1} (threshold {:.1})",
        report.balanced_fraction * 100.0,
        report.peak_load,
        last.max_load,
        last.threshold
    );
    for (name, rate) in report.tenants.iter().zip(&report.tenant_violation_rates) {
        println!("  tenant {name}: SLO violated in {:.1}% of epochs", rate * 100.0);
    }
    println!(
        "  final epoch: {} live tasks on {} active resources, balanced = {}",
        last.live_tasks, last.active_resources, last.balanced
    );
    println!("wrote {}", args.out);

    // The convergence contract of the churn scenario: after arrivals stop
    // the system must settle back under the threshold.
    if report.scenario == "churn" {
        assert!(last.balanced, "churn scenario must converge after arrivals stop");
        assert_eq!(last.arrivals, 0, "tail epochs must be arrival-free");
    }
}
