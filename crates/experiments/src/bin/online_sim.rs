//! Online-simulation driver: streaming arrivals + resource churn +
//! multi-tenant thresholds, producing the `BENCH_online.json` epoch-metrics
//! snapshot CI uploads alongside `BENCH_harness.json` — and, in service
//! mode, the checkpoint/restore + streaming-metrics soak CI byte-diffs.
//!
//! Usage: `online_sim [--quick] [--scenario NAME] [--epochs N] [--seed S]
//! [--out PATH] [--checkpoint-every N] [--checkpoint PATH]
//! [--restore PATH] [--metrics-out PATH] [--bench-out PATH]
//! [--obs-out PATH] [--obs-every N]`
//!
//! `--obs-out PATH` enables the engine's observability registry (see
//! `tlb-obs`) and writes the final report — deterministic counters,
//! phase timings, execution diagnostics — as JSON. Obs never touches an
//! RNG stream, so every other artifact stays byte-identical to an
//! obs-free run; lifecycle events (obs start, checkpoints, soak
//! reconfigurations) additionally log one JSON line each to stderr.
//!
//! `--obs-every N` (requires `--obs-out`) switches the obs artifact to
//! an NDJSON *stream*: one `{"epoch": E, "report": {...}}` line every
//! `N` epochs plus a final line at run end, so a long soak exposes its
//! counter trajectory — not just the end state — without touching the
//! deterministic metrics stream. Reports carry wall-clock phase
//! timings, so the obs stream is *not* a byte-diff artifact; CI checks
//! its cadence (line count), never its bytes.
//!
//! Scenarios:
//!
//! * `steady`  — Poisson arrivals and departures in equilibrium on a
//!   complete graph; two tenants (one tight SLO, one relaxed).
//! * `churn`   — arrivals while resources fail and recover at random and
//!   a scripted rack drains mid-run; arrivals stop at 2/3 of the run so
//!   the tail is a pure convergence phase (the default).
//! * `cdn-day` — bursty flash-crowd traffic with heavy-tailed object
//!   sizes on a torus fabric.
//! * `soak`    — the service-mode scenario: a long run that cycles
//!   through traffic phases via live `reconfigure()` on a fixed epoch
//!   grid. The phase schedule is a pure function of `(quick, epoch)` —
//!   *not* of the total epoch count — so a run restored from a
//!   checkpoint replays the identical schedule and stays bit-identical
//!   to the uninterrupted run.
//!
//! Service-mode flags (any scenario):
//!
//! * `--epochs N` is the **total** target epoch count: a restored run
//!   continues until the engine has executed `N` epochs overall, so
//!   `seg1(--epochs 60) + seg2(--restore --epochs 120)` covers exactly
//!   the epochs of one `--epochs 120` run.
//! * `--checkpoint-every N` saves a [`SimSnapshot`] to `--checkpoint
//!   PATH` at every epoch divisible by `N` (the metrics stream is
//!   flushed first, so the NDJSON on disk never lags the snapshot).
//! * `--metrics-out PATH` turns record buffering **off** and streams one
//!   compact JSON [`EpochRecord`] per line to `PATH`; memory stays flat
//!   no matter how long the run is. Concatenating segment streams must
//!   reproduce the uninterrupted stream byte for byte — the CI `soak`
//!   job diffs exactly that, across different `RAYON_NUM_THREADS` per
//!   segment.
//! * `--bench-out PATH` writes a small perf JSON (epochs/sec, peak-RSS
//!   flatness) for the advisory `bench_compare` gate.
//!
//! The report JSON contains no wall-clock fields, so two runs with the
//! same seed are byte-identical regardless of machine or thread count —
//! CI diffs `RAYON_NUM_THREADS=1` against `=4` as a reproducibility gate.

use tlb_core::threshold::ThresholdPolicy;
use tlb_graphs::generators::{complete, torus2d};
use tlb_graphs::Graph;
use tlb_sim::{
    ArrivalPlacement, ArrivalProcess, ArrivalWeights, ChurnEvent, ChurnProcess, NdjsonSink,
    OnlineSim, SimConfig, SimSnapshot, TenantSpec,
};

struct Args {
    quick: bool,
    scenario: String,
    epochs: Option<u64>,
    seed: u64,
    out: String,
    checkpoint_every: Option<u64>,
    checkpoint: String,
    restore: Option<String>,
    metrics_out: Option<String>,
    bench_out: Option<String>,
    obs_out: Option<String>,
    obs_every: Option<u64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        scenario: "churn".into(),
        epochs: None,
        seed: 2024,
        out: "BENCH_online.json".into(),
        checkpoint_every: None,
        checkpoint: "online_sim.snapshot.json".into(),
        restore: None,
        metrics_out: None,
        bench_out: None,
        obs_out: None,
        obs_every: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--scenario" => args.scenario = it.next().expect("--scenario needs a name"),
            "--epochs" => {
                args.epochs = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--epochs needs a positive integer"),
                );
            }
            "--seed" => {
                args.seed =
                    it.next().and_then(|v| v.parse().ok()).expect("--seed needs an integer");
            }
            "--out" => args.out = it.next().expect("--out needs a path"),
            "--checkpoint-every" => {
                args.checkpoint_every = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--checkpoint-every needs a positive integer"),
                );
            }
            "--checkpoint" => args.checkpoint = it.next().expect("--checkpoint needs a path"),
            "--restore" => args.restore = Some(it.next().expect("--restore needs a path")),
            "--metrics-out" => {
                args.metrics_out = Some(it.next().expect("--metrics-out needs a path"));
            }
            "--bench-out" => args.bench_out = Some(it.next().expect("--bench-out needs a path")),
            "--obs-out" => args.obs_out = Some(it.next().expect("--obs-out needs a path")),
            "--obs-every" => {
                args.obs_every = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .expect("--obs-every needs a positive integer"),
                );
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: online_sim [--quick] [--scenario steady|churn|cdn-day|soak] \
                     [--epochs N] [--seed S] [--out PATH] [--checkpoint-every N] \
                     [--checkpoint PATH] [--restore PATH] [--metrics-out PATH] \
                     [--bench-out PATH] [--obs-out PATH] [--obs-every N]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    args
}

fn two_tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("latency-tier", ThresholdPolicy::Tight, 0.3),
        TenantSpec::new("batch-tier", ThresholdPolicy::AboveAverage { epsilon: 1.0 }, 0.7),
    ]
}

/// Build `(config, base graph)` for a named scenario.
fn scenario(name: &str, quick: bool, epochs: Option<u64>, seed: u64) -> (SimConfig, Graph) {
    let scale = if quick { 1 } else { 4 };
    match name {
        "steady" => {
            let cfg = SimConfig {
                name: "steady".into(),
                epochs: epochs.unwrap_or(if quick { 120 } else { 600 }),
                seed,
                arrivals: ArrivalProcess::Poisson { rate: 10.0 * scale as f64 },
                departure_prob: 0.05,
                tenants: two_tenants(),
                rounds_per_epoch: 16,
                ..Default::default()
            };
            (cfg, complete(16 * scale))
        }
        "churn" => {
            let side = 4 * scale; // torus side
            let total = epochs.unwrap_or(if quick { 150 } else { 450 });
            let n = (side * side) as u32;
            let cfg = SimConfig {
                name: "churn".into(),
                epochs: total,
                seed,
                arrivals: ArrivalProcess::Poisson { rate: 6.0 * scale as f64 },
                // The tail third of the run has no arrivals: a pure
                // convergence phase after the churn storm.
                arrival_window: Some(total * 2 / 3),
                departure_prob: 0.02,
                churn: ChurnProcess {
                    scripted: vec![
                        // A rack (one torus row) drains mid-run and
                        // returns before the arrival window closes.
                        (total / 3, ChurnEvent::DeactivateRange { from: 0, to: n / 4 }),
                        (total / 2, ChurnEvent::ActivateRange { from: 0, to: n / 4 }),
                    ],
                    random_down: 0.05,
                    random_up: 0.10,
                    ..Default::default()
                },
                tenants: two_tenants(),
                rounds_per_epoch: 24,
                ..Default::default()
            };
            (cfg, torus2d(side, side))
        }
        "cdn-day" => {
            let cfg = SimConfig {
                name: "cdn-day".into(),
                epochs: epochs.unwrap_or(if quick { 150 } else { 500 }),
                seed,
                arrivals: ArrivalProcess::Bursty {
                    base: 4.0 * scale as f64,
                    burst: 40.0 * scale as f64,
                    period: 50,
                    burst_len: 6,
                },
                arrival_weights: ArrivalWeights::ParetoTruncated { alpha: 1.3, cap: 32.0 },
                arrival_placement: ArrivalPlacement::Uniform,
                departure_prob: 0.04,
                tenants: two_tenants(),
                rounds_per_epoch: 24,
                ..Default::default()
            };
            (cfg, torus2d(4 * scale, 4 * scale))
        }
        "soak" => {
            let cfg = SimConfig {
                name: "soak".into(),
                epochs: epochs.unwrap_or(if quick { 120 } else { 1200 }),
                seed,
                arrivals: ArrivalProcess::Poisson { rate: 6.0 * scale as f64 },
                departure_prob: 0.05,
                churn: ChurnProcess {
                    scripted: vec![],
                    random_down: 0.03,
                    random_up: 0.06,
                    ..Default::default()
                },
                tenants: two_tenants(),
                rounds_per_epoch: 16,
                ..Default::default()
            };
            (cfg, torus2d(4 * scale, 4 * scale))
        }
        other => panic!("unknown scenario {other:?} (expected steady / churn / cdn-day / soak)"),
    }
}

/// Soak phase period: the schedule flips phase every this many epochs.
fn soak_period(quick: bool) -> u64 {
    if quick {
        30
    } else {
        100
    }
}

/// The soak scenario's live-reconfiguration schedule: at every epoch on
/// the phase grid, the config to apply. A pure function of
/// `(quick, epoch)` and the base config — deliberately *not* of the
/// total epoch count — so a restored segment recomputes the identical
/// schedule from its CLI args and the stream stays bit-identical.
fn soak_phase(base: &SimConfig, quick: bool, epoch: u64) -> Option<SimConfig> {
    let period = soak_period(quick);
    if !epoch.is_multiple_of(period) {
        return None;
    }
    let scale = if quick { 1 } else { 4 };
    let phase = (epoch / period) % 3;
    Some(match phase {
        // Equilibrium traffic.
        0 => base.clone(),
        // Flash crowd: bursty arrivals, bigger round budget.
        1 => SimConfig {
            arrivals: ArrivalProcess::Bursty {
                base: 4.0 * scale as f64,
                burst: 30.0 * scale as f64,
                period: 20,
                burst_len: 4,
            },
            rounds_per_epoch: 24,
            ..base.clone()
        },
        // Overnight drain: trickle arrivals, faster departures.
        _ => SimConfig {
            arrivals: ArrivalProcess::Poisson { rate: 1.0 * scale as f64 },
            departure_prob: 0.10,
            ..base.clone()
        },
    })
}

/// Peak resident set (VmHWM) in bytes, from `/proc/self/status`.
/// Inlined rather than taken from `tlb-bench` (which depends on this
/// crate); returns 0 off Linux.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// One line of the periodic obs stream: the epoch plus the full report.
fn write_obs_line(
    stream: &mut std::io::BufWriter<std::fs::File>,
    epoch: u64,
    sim: &OnlineSim,
) -> anyhow::Result<()> {
    let obs = sim.obs_report().expect("obs was enabled");
    std::io::Write::write_all(
        stream,
        format!("{{\"epoch\": {epoch}, \"report\": {}}}\n", obs.to_json()).as_bytes(),
    )?;
    Ok(())
}

fn main() -> anyhow::Result<()> {
    let args = parse_args();
    let (cfg, base) = scenario(&args.scenario, args.quick, args.epochs, args.seed);
    let total = cfg.epochs;
    let n = base.num_nodes();

    let mut sim = match &args.restore {
        Some(path) => {
            let snap = SimSnapshot::load(path)?;
            let resumed = OnlineSim::restore(snap, base)?;
            println!("restored from {path} at epoch {}", resumed.epoch());
            resumed
        }
        None => OnlineSim::new(base, cfg.clone()),
    };
    if let Some(path) = &args.metrics_out {
        // Service mode: stream the series, keep memory flat.
        sim.set_record_buffering(false);
        sim.set_sink(Some(Box::new(NdjsonSink::create(path)?)));
    }
    if args.obs_out.is_some() {
        // After a restore this logs the resume epoch in its start event.
        sim.enable_obs();
    }
    let mut obs_stream = match (&args.obs_every, &args.obs_out) {
        (Some(_), Some(path)) => Some(
            std::fs::File::create(path)
                .map(std::io::BufWriter::new)
                .map_err(|e| anyhow::anyhow!("cannot create {path}: {e}"))?,
        ),
        (Some(_), None) => anyhow::bail!("--obs-every requires --obs-out"),
        _ => None,
    };

    let started = std::time::Instant::now();
    let start_epoch = sim.epoch();
    let mut warmup_rss = 0u64;
    while sim.epoch() < total {
        let epoch = sim.epoch();
        if args.scenario == "soak" {
            if let Some(phase_cfg) = soak_phase(&cfg, args.quick, epoch) {
                sim.reconfigure(phase_cfg)?;
            }
        }
        sim.try_run_epoch()?;
        if epoch + 1 == total / 10 {
            warmup_rss = peak_rss_bytes();
        }
        if let Some(every) = args.checkpoint_every {
            let done = sim.epoch();
            if done % every == 0 && done < total {
                sim.checkpoint()?.save(&args.checkpoint)?;
                println!("checkpoint at epoch {done} -> {}", args.checkpoint);
            }
        }
        if let (Some(every), Some(stream)) = (args.obs_every, obs_stream.as_mut()) {
            let done = sim.epoch();
            if done.is_multiple_of(every) && done < total {
                write_obs_line(stream, done, &sim)?;
            }
        }
    }
    let secs = started.elapsed().as_secs_f64();
    let segment_epochs = sim.epoch() - start_epoch;
    if let Some(mut sink) = sim.set_sink(None) {
        sink.flush()?;
    }
    if args.checkpoint_every.is_some() && args.restore.is_none() && sim.epoch() == total {
        // A final snapshot so a follow-on segment can always resume.
        sim.checkpoint()?.save(&args.checkpoint)?;
    }

    let report = sim.report();
    let json = report.to_json()?;
    std::fs::write(&args.out, &json)
        .map_err(|e| anyhow::anyhow!("cannot write {}: {e}", args.out))?;

    println!(
        "scenario {} on {n} resources: {segment_epochs} epochs this segment in {secs:.2}s \
         ({:.0} epochs/s), {} epochs total",
        report.scenario,
        segment_epochs as f64 / secs.max(1e-9),
        sim.epoch()
    );
    println!(
        "  arrivals {} / departures {} / protocol migrations {}",
        report.total_arrivals, report.total_departures, report.total_migrations
    );
    println!(
        "  balanced epochs {:.1}% / peak load {:.1}",
        report.balanced_fraction * 100.0,
        report.peak_load,
    );
    for (name, rate) in report.tenants.iter().zip(&report.tenant_violation_rates) {
        println!("  tenant {name}: SLO violated in {:.1}% of epochs", rate * 100.0);
    }
    if let Some(last) = report.last() {
        println!(
            "  final epoch: {} live tasks on {} active resources, balanced = {} \
             (max load {:.1}, threshold {:.1})",
            last.live_tasks, last.active_resources, last.balanced, last.max_load, last.threshold
        );
    }
    println!("wrote {}", args.out);

    if let Some(bench_out) = &args.bench_out {
        let final_rss = peak_rss_bytes();
        // Flatness: how much the high-water mark grew after warmup. A
        // leaking record buffer shows up here as a ratio well above 1.
        let rss_growth = if warmup_rss > 0 { final_rss as f64 / warmup_rss as f64 } else { 1.0 };
        let bench = format!(
            "{{\n  \"bench\": \"soak\",\n  \"scenario\": \"{}\",\n  \"quick\": {},\n  \
             \"epochs\": {},\n  \"secs\": {secs:.4},\n  \"epochs_per_sec\": {:.2},\n  \
             \"peak_rss_bytes\": {final_rss},\n  \"rss_growth_after_warmup\": {rss_growth:.4}\n}}\n",
            report.scenario,
            args.quick,
            sim.epoch(),
            segment_epochs as f64 / secs.max(1e-9),
        );
        std::fs::write(bench_out, &bench)
            .map_err(|e| anyhow::anyhow!("cannot write {bench_out}: {e}"))?;
        println!("wrote {bench_out}");
    }

    if let Some(obs_out) = &args.obs_out {
        match obs_stream.as_mut() {
            // Streaming mode: close the cadence with a final line.
            Some(stream) => {
                write_obs_line(stream, sim.epoch(), &sim)?;
                std::io::Write::flush(stream)?;
                println!(
                    "wrote {obs_out} (obs NDJSON stream, every {} epochs)",
                    args.obs_every.unwrap_or(0)
                );
            }
            None => {
                let obs = sim.obs_report().expect("obs was enabled");
                std::fs::write(obs_out, format!("{}\n", obs.to_json()))
                    .map_err(|e| anyhow::anyhow!("cannot write {obs_out}: {e}"))?;
                println!("wrote {obs_out} (obs report: counters / timings / exec)");
            }
        }
    }

    // The convergence contract of the churn scenario: after arrivals stop
    // the system must settle back under the threshold.
    if report.scenario == "churn" {
        if let Some(last) = report.last() {
            assert!(last.balanced, "churn scenario must converge after arrivals stop");
            assert_eq!(last.arrivals, 0, "tail epochs must be arrival-free");
        }
    }
    Ok(())
}
