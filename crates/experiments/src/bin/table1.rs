//! Regenerate the paper's Table 1 (mixing & hitting times per family).

use tlb_experiments::cli::Options;
use tlb_experiments::figures::table1;

fn main() {
    let opts = Options::from_env();
    let cfg = if opts.quick { table1::Config::quick() } else { table1::Config::default() };
    let table = table1::run(&cfg);
    print!("{}", table.render());
    let path = table.save(&opts.out_dir).expect("write results");
    eprintln!("saved {}", path.display());
}
