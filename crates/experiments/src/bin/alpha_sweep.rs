//! A3: balancing time vs alpha (how conservative is the analysis alpha?).
//!
//! `--obs-out PATH` additionally writes the sweep's observability
//! report (deterministic counters + wall timings + pool diagnostics;
//! see `tlb-obs`). The table artifacts are byte-identical with or
//! without it.

use tlb_experiments::cli::Options;
use tlb_experiments::figures::alpha_sweep;

fn main() {
    let opts = Options::from_env();
    let mut cfg = if opts.full {
        alpha_sweep::Config::full()
    } else if opts.quick {
        alpha_sweep::Config::quick()
    } else {
        alpha_sweep::Config::default()
    };
    if let Some(t) = opts.trials {
        cfg.trials = t;
    }
    let (table, obs) = alpha_sweep::run_obs(&cfg);
    print!("{}", table.render());
    let path = table.save(&opts.out_dir).expect("write results");
    eprintln!("saved {}", path.display());
    if let Some(obs_out) = &opts.obs_out {
        std::fs::write(obs_out, format!("{}\n", obs.to_json()))
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", obs_out.display()));
        eprintln!("saved {}", obs_out.display());
    }
}
