//! A3: balancing time vs alpha (how conservative is the analysis alpha?).

use tlb_experiments::cli::Options;
use tlb_experiments::figures::alpha_sweep;

fn main() {
    let opts = Options::from_env();
    let mut cfg = if opts.full {
        alpha_sweep::Config::full()
    } else if opts.quick {
        alpha_sweep::Config::quick()
    } else {
        alpha_sweep::Config::default()
    };
    if let Some(t) = opts.trials {
        cfg.trials = t;
    }
    let table = alpha_sweep::run(&cfg);
    print!("{}", table.render());
    let path = table.save(&opts.out_dir).expect("write results");
    eprintln!("saved {}", path.display());
}
