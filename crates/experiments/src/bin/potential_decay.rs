//! A6: measured potential decay vs Lemma 10's analytic delta.
//!
//! `--obs-out PATH` additionally writes the sweep's observability
//! report (deterministic counters + wall timings + pool diagnostics;
//! see `tlb-obs`). The table artifacts are byte-identical with or
//! without it.

use tlb_experiments::cli::Options;
use tlb_experiments::figures::potential_decay;

fn main() {
    let opts = Options::from_env();
    let mut cfg = if opts.full {
        potential_decay::Config::full()
    } else if opts.quick {
        potential_decay::Config::quick()
    } else {
        potential_decay::Config::default()
    };
    if let Some(t) = opts.trials {
        cfg.trials = t;
    }
    let (table, obs) = potential_decay::run_obs(&cfg);
    print!("{}", table.render());
    let path = table.save(&opts.out_dir).expect("write results");
    eprintln!("saved {}", path.display());
    if let Some(obs_out) = &opts.obs_out {
        std::fs::write(obs_out, format!("{}\n", obs.to_json()))
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", obs_out.display()));
        eprintln!("saved {}", obs_out.display());
    }
}
