//! A6: measured potential decay vs Lemma 10's analytic delta.

use tlb_experiments::cli::Options;
use tlb_experiments::figures::potential_decay;

fn main() {
    let opts = Options::from_env();
    let mut cfg = if opts.full {
        potential_decay::Config::full()
    } else if opts.quick {
        potential_decay::Config::quick()
    } else {
        potential_decay::Config::default()
    };
    if let Some(t) = opts.trials {
        cfg.trials = t;
    }
    let table = potential_decay::run(&cfg);
    print!("{}", table.render());
    let path = table.save(&opts.out_dir).expect("write results");
    eprintln!("saved {}", path.display());
}
