//! Umbrella crate for the threshold-load-balancing workspace.
//!
//! Re-exports the six member crates under one roof so downstream users
//! (and the repo-level integration tests and examples) can depend on a
//! single package. See `tlb_core` for the protocol implementations and
//! `tlb_experiments` for the paper's figure/table drivers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tlb_baselines as baselines;
pub use tlb_core as core;
pub use tlb_experiments as experiments;
pub use tlb_graphs as graphs;
pub use tlb_walks as walks;
